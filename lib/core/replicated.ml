module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Ipaddr = Tcpfo_packet.Ipaddr
module Time = Tcpfo_sim.Time
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry
module Transfer = Tcpfo_statex.Transfer
module Snapshot = Tcpfo_statex.Snapshot

type event =
  | Secondary_failure_detected
  | Primary_failure_detected
  | Takeover_complete
  | Reintegrated
  | Transfers_complete of int
  | Promoted of string
  | Standby_lost of string
  | Rejoined of string
  | Isolated of { local_port : int; remote : Ipaddr.t * int }

let event_to_string = function
  | Secondary_failure_detected -> "secondary failure detected"
  | Primary_failure_detected -> "primary failure detected"
  | Takeover_complete -> "IP takeover complete"
  | Reintegrated -> "replica reintegrated"
  | Transfers_complete n ->
    Printf.sprintf "hot state transfer done: %d connections re-replicated" n
  | Promoted name -> Printf.sprintf "standby %s promoted into the active pair" name
  | Standby_lost name -> Printf.sprintf "standby %s declared dead" name
  | Rejoined name -> Printf.sprintf "%s joined the back of the pool" name
  | Isolated { local_port; remote = ra, rp } ->
    Printf.sprintf "connection :%d <-> %s:%d demoted to solo (not transferred)"
      local_port (Ipaddr.to_string ra) rp

type t = {
  mutable primary : Host.t;
  mutable secondary : Host.t;
  service_addr : Ipaddr.t;
      (* fixed for the lifetime of the pool: after a primary failure and
         promotion the surviving replica keeps serving it, so it can
         no longer be derived from [Host.addr t.primary] *)
  config : Failover_config.t;
  registry : Failover_config.registry;
  mutable pbridge : Primary_bridge.t;
  mutable sbridge : Secondary_bridge.t;
  mutable xfer_p : Transfer.t;  (* control-channel endpoint on primary *)
  mutable xfer_s : Transfer.t;  (* ... and on secondary *)
  mutable hb_on_primary : Heartbeat.t option;
  mutable hb_on_secondary : Heartbeat.t option;
  (* standbys in promotion order; only the active pair replicates
     connection state — a standby is cold until it is promoted and hot
     state transfer re-replicates the live connections onto it *)
  mutable standbys : Host.t list;
  mutable standby_watch : (Host.t * Heartbeat.t * Heartbeat.t) list;
  mutable services : (int * (role:[ `Primary | `Secondary ] -> Tcb.t -> unit)) list;
  (* §7.2 client-role connections: the setup registered for each backend
     endpoint, re-invoked when a restored snapshot of that connection
     lands on a fresh replica *)
  mutable backends :
    ((Ipaddr.t * int) * (role:[ `Primary | `Secondary ] -> Tcb.t -> unit)) list;
  mutable status : [ `Normal | `Primary_failed | `Secondary_failed ];
  mutable on_event : event -> unit;
  (* additional listeners ({!add_on_event}) fired after [on_event]: the
     dispatcher tier's health model taps the pool here without stealing
     the application's callback *)
  mutable listeners : (event -> unit) list;
  (* hot-state-transfer bookkeeping *)
  mutable pending : int;
  mutable reint_started : Time.t option;
  mutable reintegrations : int;
  mutable xfer_failures : int;
  reint_latency : Registry.histogram;
  isolated : Registry.counter;
  (* paced offer scheduler *)
  queue_depth : Registry.gauge;
  paced_offers : Registry.counter;
  pace_wait : Registry.counter;
}

let emit t e =
  t.on_event e;
  List.iter (fun f -> f e) t.listeners

(* --- standby liveness ------------------------------------------------ *)

(* One detector pair per standby: the primary watches the standby (so a
   silently dead standby is dropped from the pool instead of being
   promoted into a black hole much later) and the standby beacons to —
   and watches — the primary.  The standby-side detector takes no action
   of its own: promotion is driven by the active pair's §5/§6 machinery,
   never by a cold replica's opinion. *)
let disarm_standby t host =
  t.standby_watch <-
    List.filter
      (fun (h, hb_p, hb_s) ->
        if h == host then begin
          Heartbeat.stop hb_p;
          Heartbeat.stop hb_s;
          false
        end
        else true)
      t.standby_watch

let watch_standby t standby =
  let hb_p =
    Heartbeat.start t.primary ~peer:(Host.addr standby) ~role:`Primary
      ~config:t.config ~on_peer_failure:(fun () ->
        if List.memq standby t.standbys then begin
          t.standbys <- List.filter (fun h -> h != standby) t.standbys;
          disarm_standby t standby;
          emit t (Standby_lost (Host.name standby))
        end)
  in
  let hb_s =
    Heartbeat.start standby ~peer:(Host.addr t.primary) ~role:`Secondary
      ~config:t.config
      ~on_peer_failure:(fun () -> ())
  in
  (standby, hb_p, hb_s)

(* Re-point every standby watcher at the current primary (promotions move
   the primary role, and with it the watching end). *)
let arm_standbys t =
  List.iter
    (fun (_, hb_p, hb_s) ->
      Heartbeat.stop hb_p;
      Heartbeat.stop hb_s)
    t.standby_watch;
  t.standby_watch <- List.map (fun s -> watch_standby t s) t.standbys

(* --- hot state transfer -------------------------------------------- *)

(* Time_wait transfers too: the replica must keep answering retransmitted
   FINs after a second failover, or a late client FIN meets an RST. *)
let transferable_state : Tcb.state -> bool = function
  | Tcb.Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
  | Last_ack | Time_wait ->
    true
  | Syn_sent | Syn_received | Closed -> false

let find_backend t (ra, rp) =
  List.find_map
    (fun ((a, p), setup) ->
      if Ipaddr.equal a ra && p = rp then Some setup else None)
    t.backends

(* Install an incoming snapshot into [host]'s stack: adopt a restored
   TCB, hand it back to the application as a secondary-role attach —
   server-role connections through the registered listener, client-role
   (§7.2) connections through the connect_backend setup registered for
   the remote endpoint (the retained-input replay then rebuilds its
   per-connection state) — and resume. *)
let installer t host ~src:_ (sc : Snapshot.conn) =
  let snap = sc.Snapshot.tcb in
  if not (transferable_state snap.Tcb.sn_state) then
    Error "connection state not transferable"
  else if not (Ipaddr.equal (fst snap.Tcb.sn_local) t.service_addr) then
    Error "snapshot is not for the service address"
  else
    let stack = Host.tcp host in
    match
      Stack.adopt stack ~local:snap.Tcb.sn_local ~remote:snap.Tcb.sn_remote
        ~make:(fun actions ->
          Tcb.restore (Host.clock host) ~obs:(Stack.obs stack)
            ~config:(Stack.config stack) actions snap)
    with
    | Error _ as e -> e
    | Ok tcb ->
      (match sc.Snapshot.role with
      | `Server ->
        (match List.assoc_opt (snd snap.Tcb.sn_local) t.services with
        | Some on_accept -> on_accept ~role:`Secondary tcb
        | None -> ())
      | `Client ->
        (match find_backend t snap.Tcb.sn_remote with
        | Some setup -> setup ~role:`Secondary tcb
        | None -> ()));
      Tcb.resume_restored tcb;
      Ok ()

let attach_transfer t host =
  let xfer = Transfer.attach host in
  Transfer.set_installer xfer (installer t host);
  xfer

(* Every service connection on the survivor is either shipped to the new
   replica or pinned solo — nothing is left in a state where it could
   half-merge with the fresh replica's different sequence numbers.

   Offers go through a paced, windowed scheduler:
   {!Failover_config.transfer_inflight} caps how many connections may be
   mid-transfer at once and {!Failover_config.transfer_pace} spaces
   successive offers (widened to the transfer channel's RTT-derived
   {!Transfer.suggested_pace} once a sample exists), so re-replicating
   thousands of connections trickles out at the channel's rate instead
   of dumping every snapshot into one simulation instant.  Both default
   off, which reproduces the legacy burst exactly. *)
let start_transfers t =
  let survivor = t.primary in
  let pb = t.pbridge in
  let dst = Host.addr t.secondary in
  let clock = Host.clock survivor in
  let t0 = clock.now () in
  t.reint_started <- Some t0;
  let candidates =
    (* both directions qualify: listener-side connections match on the
       local service port, §7.2 client-role connections (registered via
       [register_remote]) on the remote port *)
    List.filter
      (fun tcb ->
        let la, lp = Tcb.local_endpoint tcb in
        let _, rp = Tcb.remote_endpoint tcb in
        Ipaddr.equal la t.service_addr
        && Failover_config.is_failover_conn t.registry ~local_port:lp
             ~remote_port:rp)
      (Stack.connections (Host.tcp survivor))
  in
  let to_transfer, to_isolate =
    List.partition
      (fun tcb ->
        transferable_state (Tcb.state tcb)
        && Tcb.input_retention_enabled tcb)
      candidates
  in
  let demote_solo tcb =
    let _, lp = Tcb.local_endpoint tcb in
    let remote = Tcb.remote_endpoint tcb in
    Primary_bridge.isolate_conn pb ~remote ~local_port:lp;
    Registry.Counter.incr t.isolated;
    emit t (Isolated { local_port = lp; remote })
  in
  List.iter demote_solo to_isolate;
  let finish () =
    (match t.reint_started with
    | Some t0 ->
      t.reint_started <- None;
      Registry.Histogram.observe t.reint_latency
        (Time.to_us (clock.now () - t0))
    | None -> ());
    emit t (Transfers_complete t.reintegrations)
  in
  t.pending <- List.length to_transfer;
  t.reintegrations <- 0;
  if t.pending = 0 then finish ()
  else begin
    let cap = t.config.Failover_config.transfer_inflight in
    let pace_floor = t.config.Failover_config.transfer_pace in
    let queue = Queue.create () in
    List.iter (fun tcb -> Queue.add tcb queue) to_transfer;
    Registry.Gauge.set t.queue_depth (Queue.length queue);
    let inflight = ref 0 in
    let pace_armed = ref false in
    let rec offer_one tcb =
      let _, lp = Tcb.local_endpoint tcb in
      let remote = Tcb.remote_endpoint tcb in
      (* Quiesce FIRST: [begin_transfer] holds the connection's merge
         state before Δ and the TCB image are read, so the capture is
         atomic at the offer instant — a client byte landing between
         the Δ read and the snapshot would otherwise be counted in
         both. *)
      Primary_bridge.begin_transfer pb ~remote ~local_port:lp;
      let delta_opt = Primary_bridge.conn_delta pb ~remote ~local_port:lp in
      let delta = Option.value delta_opt ~default:0 in
      let snap = Tcb.snapshot tcb in
      let snap =
        if delta <> 0 then Tcb.shift_snapshot snap (-delta) else snap
      in
      let role =
        if Option.is_some (find_backend t remote) then `Client else `Server
      in
      let sc =
        {
          Snapshot.tcb = snap;
          role;
          delta;
          next_wire_seq = snap.Tcb.sn_snd_max;
          held_segments = 0;
          solo = delta_opt <> None;
        }
      in
      let wait = clock.now () - t0 in
      if wait > 0 then begin
        Registry.Counter.incr t.paced_offers;
        Registry.Counter.add t.pace_wait (wait / 1000)
      end;
      incr inflight;
      Transfer.offer t.xfer_p ~dst sc ~on_result:(fun res ->
          decr inflight;
          (match res with
          | Ok () when t.status = `Normal ->
            t.reintegrations <- t.reintegrations + 1;
            Primary_bridge.complete_transfer pb ~remote ~local_port:lp
              ~tcb ~delta
          | Ok () | Error _ ->
            (match res with
            | Error _ -> t.xfer_failures <- t.xfer_failures + 1
            | Ok () -> ());
            Primary_bridge.abort_transfer pb ~remote ~local_port:lp;
            Registry.Counter.incr t.isolated;
            emit t (Isolated { local_port = lp; remote }));
          t.pending <- t.pending - 1;
          if t.pending = 0 then finish ()
          else if not !pace_armed then pump ())
    and pump () =
      if t.status <> `Normal then begin
        (* a new failure arrived mid-pacing: nothing more can ship on
           this run — pin the queued remainder solo *)
        while not (Queue.is_empty queue) do
          demote_solo (Queue.pop queue);
          t.pending <- t.pending - 1
        done;
        Registry.Gauge.set t.queue_depth 0;
        if t.pending = 0 then finish ()
      end
      else begin
        let draining = ref true in
        while !draining && not (Queue.is_empty queue)
              && (cap = 0 || !inflight < cap) do
          offer_one (Queue.pop queue);
          Registry.Gauge.set t.queue_depth (Queue.length queue);
          if pace_floor > 0 && not (Queue.is_empty queue) then begin
            draining := false;
            pace_armed := true;
            let gap = max pace_floor (Transfer.suggested_pace t.xfer_p) in
            ignore
              (clock.schedule gap (fun () ->
                   pace_armed := false;
                   pump ()))
          end
        done
      end
    in
    pump ()
  end

(* --- failure handling, promotion, reintegration ---------------------- *)

(* watch the secondary from the primary; on failure run §6, then promote
   the next standby (if any) into the vacated secondary role *)
let rec watch_secondary t =
  Heartbeat.start t.primary ~peer:(Host.addr t.secondary) ~role:`Primary
    ~config:t.config ~on_peer_failure:(fun () ->
      if t.status = `Normal then begin
        t.status <- `Secondary_failed;
        Primary_bridge.secondary_failed t.pbridge;
        emit t Secondary_failure_detected;
        promote_next t
      end)

(* watch the primary from the secondary; on failure run the §5 takeover,
   then promote the next standby under the promoted survivor *)
and watch_primary t =
  Heartbeat.start t.secondary ~peer:(Host.addr t.primary) ~role:`Secondary
    ~config:t.config ~on_peer_failure:(fun () ->
      if t.status = `Normal then begin
        t.status <- `Primary_failed;
        emit t Primary_failure_detected;
        Secondary_bridge.begin_takeover t.sbridge ~on_complete:(fun () ->
            emit t Takeover_complete;
            promote_next t)
      end)

(* Cascading failover: the head of the standby list joins the active pair
   through the same path a repaired host does — bridges reinstall, the
   registered services start, and hot state transfer re-replicates every
   live connection.  Standbys the detectors already know to be dead are
   skipped (their [Standby_lost] may still be in flight). *)
and promote_next t =
  match t.standbys with
  | [] -> ()
  | s :: rest ->
    t.standbys <- rest;
    disarm_standby t s;
    if Host.alive s then begin
      emit t (Promoted (Host.name s));
      reintegrate t ~secondary:s
    end
    else promote_next t

(* Role-agnostic reintegration.  Two shapes:

   - the *secondary* failed: the surviving primary keeps its role; the
     fresh host becomes the new secondary.  Live connections are shipped
     shifted by −Δseq into wire space.

   - the *primary* failed: the surviving secondary was promoted by the
     §5 takeover and keeps serving under the service address; the fresh
     host becomes the new secondary of the *promoted* pair.  The
     survivor's TCBs already count in wire space (Δ = 0), so snapshots
     ship unshifted; the survivor swaps its (taken-over) secondary
     bridge for a primary bridge. *)
and reintegrate t ~secondary:fresh =
  (match t.status with
  | `Normal ->
    invalid_arg "Replicated.reintegrate: no failed replica to replace"
  | `Secondary_failed ->
    Option.iter Heartbeat.stop t.hb_on_primary;
    t.secondary <- fresh;
    t.sbridge <-
      Secondary_bridge.install fresh ~registry:t.registry
        ~service_addr:t.service_addr ~only_new_connections:true ();
    t.xfer_s <- attach_transfer t fresh;
    Primary_bridge.reinstate t.pbridge ~secondary_addr:(Host.addr fresh)
  | `Primary_failed ->
    if not (Secondary_bridge.taken_over t.sbridge) then
      invalid_arg "Replicated.reintegrate: takeover still in progress";
    Option.iter Heartbeat.stop t.hb_on_secondary;
    let survivor = t.secondary in
    Secondary_bridge.uninstall t.sbridge;
    t.primary <- survivor;
    t.secondary <- fresh;
    t.pbridge <-
      Primary_bridge.install survivor ~registry:t.registry
        ~service_addr:t.service_addr ~secondary_addr:(Host.addr fresh) ();
    t.sbridge <-
      Secondary_bridge.install fresh ~registry:t.registry
        ~service_addr:t.service_addr ~only_new_connections:true ();
    t.xfer_p <- t.xfer_s;
    Transfer.set_installer t.xfer_p (installer t survivor);
    t.xfer_s <- attach_transfer t fresh);
  (* start the registered services on the new replica *)
  List.iter
    (fun (port, on_accept) ->
      Stack.listen (Host.tcp fresh) ~port ~on_accept:(fun tcb ->
          Tcb.enable_input_retention tcb;
          on_accept ~role:`Secondary tcb))
    t.services;
  (* restart mutual fault detection, and re-point the remaining standby
     watchers at the (possibly new) primary *)
  t.status <- `Normal;
  t.hb_on_primary <- Some (watch_secondary t);
  t.hb_on_secondary <- Some (watch_primary t);
  arm_standbys t;
  emit t Reintegrated;
  (* re-replicate live connections onto the fresh replica *)
  start_transfers t

(* A repaired host rejoins at the back of the pool.  If the pool is
   degraded (a failure happened and no standby was left to promote), the
   newcomer pairs with the survivor directly — the N = 2 reintegration;
   if a §5 takeover is still running it queues and the takeover's
   completion promotes it. *)
let rejoin t host =
  if not (Host.alive host) then
    invalid_arg "Replicated.rejoin: host is not alive";
  if
    host == t.primary || host == t.secondary
    || List.exists (fun h -> h == host) t.standbys
  then invalid_arg "Replicated.rejoin: host is already in the pool";
  match t.status with
  | `Normal ->
    t.standbys <- t.standbys @ [ host ];
    t.standby_watch <- t.standby_watch @ [ watch_standby t host ];
    emit t (Rejoined (Host.name host))
  | `Primary_failed when not (Secondary_bridge.taken_over t.sbridge) ->
    t.standbys <- t.standbys @ [ host ];
    emit t (Rejoined (Host.name host))
  | `Primary_failed | `Secondary_failed ->
    emit t (Rejoined (Host.name host));
    reintegrate t ~secondary:host

(* --- construction --------------------------------------------------- *)

let create_pool ~replicas ~config () =
  let primary, secondary, standbys =
    match replicas with
    | p :: s :: rest -> (p, s, rest)
    | _ -> invalid_arg "Replicated.create_pool: need at least two replicas"
  in
  let rec distinct = function
    | [] -> true
    | h :: rest -> (not (List.exists (fun h' -> h' == h) rest)) && distinct rest
  in
  if not (distinct replicas) then
    invalid_arg "Replicated.create_pool: duplicate replica host";
  List.iter
    (fun h ->
      if not (Host.alive h) then
        invalid_arg
          ("Replicated.create_pool: replica " ^ Host.name h ^ " is not alive"))
    replicas;
  let service_addr = Host.addr primary in
  let secondary_addr = Host.addr secondary in
  let registry = Failover_config.create_registry config in
  let pbridge =
    Primary_bridge.install primary ~registry ~service_addr ~secondary_addr ()
  in
  let sbridge = Secondary_bridge.install secondary ~registry ~service_addr () in
  let statex = Obs.scope (Obs.root (Host.obs primary)) "statex" in
  let t =
    {
      primary;
      secondary;
      service_addr;
      config;
      registry;
      pbridge;
      sbridge;
      xfer_p = Transfer.attach primary;
      xfer_s = Transfer.attach secondary;
      hb_on_primary = None;
      hb_on_secondary = None;
      standbys;
      standby_watch = [];
      services = [];
      backends = [];
      status = `Normal;
      on_event = (fun _ -> ());
      listeners = [];
      pending = 0;
      reint_started = None;
      reintegrations = 0;
      xfer_failures = 0;
      reint_latency = Obs.histogram statex "reintegration_us";
      isolated = Obs.counter statex "isolated_conns";
      queue_depth = Obs.gauge statex "transfer_queue_depth";
      paced_offers = Obs.counter statex "paced_offers";
      pace_wait = Obs.counter statex "pace_wait_us";
    }
  in
  Transfer.set_installer t.xfer_p (installer t primary);
  Transfer.set_installer t.xfer_s (installer t secondary);
  t.hb_on_primary <- Some (watch_secondary t);
  t.hb_on_secondary <- Some (watch_primary t);
  arm_standbys t;
  t

(* the original two-host API is the N = 2 pool *)
let create ~primary ~secondary ~config () =
  create_pool ~replicas:[ primary; secondary ] ~config ()

let service_addr t = t.service_addr
let registry t = t.registry
let primary_bridge t = t.pbridge
let secondary_bridge t = t.sbridge
let set_on_event t fn = t.on_event <- fn
let add_on_event t fn = t.listeners <- t.listeners @ [ fn ]
let status t = t.status
let standbys t = t.standbys
let replicas t = t.primary :: t.secondary :: t.standbys
let pending_transfers t = t.pending
let transfer_failures t = t.xfer_failures
let transfer_stats t = Transfer.stats t.xfer_p

let listen t ~port ~on_accept =
  Failover_config.register_endpoint t.registry ~local_port:port;
  t.services <- (port, on_accept) :: t.services;
  (* retention makes the connection transferable: a later reintegration
     replays the retained input on the new replica to rebuild the
     application layer *)
  Stack.listen (Host.tcp t.primary) ~port ~on_accept:(fun tcb ->
      Tcb.enable_input_retention tcb;
      on_accept ~role:`Primary tcb);
  Stack.listen (Host.tcp t.secondary) ~port ~on_accept:(fun tcb ->
      Tcb.enable_input_retention tcb;
      on_accept ~role:`Secondary tcb)

let connect_backend t ~remote ?local_port ~setup () =
  (match local_port with
  | Some p -> Failover_config.register_endpoint t.registry ~local_port:p
  | None ->
    Failover_config.register_remote t.registry ~remote_port:(snd remote));
  t.backends <- (remote, setup) :: t.backends;
  let service = service_addr t in
  (* retention makes the client-role connection transferable, exactly as
     [listen] does for server-role connections *)
  let cp =
    Stack.connect (Host.tcp t.primary) ~local:service ?local_port ~remote ()
  in
  Tcb.enable_input_retention cp;
  setup ~role:`Primary cp;
  let cs =
    Stack.connect (Host.tcp t.secondary) ~local:service ?local_port ~remote
      ()
  in
  Tcb.enable_input_retention cs;
  setup ~role:`Secondary cs

let kill_primary t = Host.kill t.primary
let kill_secondary t = Host.kill t.secondary
