(** A TCP connection endpoint (transmission control block).

    Implements the RFC 793 state machine with sliding-window flow control,
    MSS negotiation, delayed acknowledgments, Jacobson RTO with Karn's rule
    and exponential backoff, Reno congestion control with fast retransmit,
    zero-window persist probes, and full FIN/TIME_WAIT teardown.

    A [Tcb.t] knows nothing about replication: the failover bridge operates
    purely on the segments this module emits and consumes, which is the
    transparency property the paper claims. *)

type state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

val state_to_string : state -> string

type t

(** Callbacks a connection raises toward the application.  All default to
    no-ops and can be set at any time. *)

val set_on_established : t -> (unit -> unit) -> unit
(** Connection reached ESTABLISHED (handshake finished). *)

val set_on_data : t -> (string -> unit) -> unit
(** In-order payload delivery.  The receive window reopens as data is
    delivered (the application consumes eagerly) unless reading is
    paused. *)

val pause_reading : t -> unit
(** Application backpressure: in-order data is parked in the receive
    queue (shrinking the advertised window) instead of being delivered.
    A slow consumer closes its window, which is what the bridge's
    joint-window rule (§3.2) propagates to the client. *)

val resume_reading : t -> unit
(** Deliver everything parked and reopen the window (advertising it with
    a window update if it had closed). *)

val reading_paused : t -> bool
val recv_queue_length : t -> int

val set_on_eof : t -> (unit -> unit) -> unit
(** Peer sent FIN; no more data will arrive. *)

val set_on_drain : t -> (unit -> unit) -> unit
(** Send-buffer space became available after being full. *)

val set_on_close : t -> (unit -> unit) -> unit
(** Connection fully terminated (reached CLOSED, possibly via TIME_WAIT
    which is reported at entry). *)

val set_on_reset : t -> (unit -> unit) -> unit
(** Connection aborted: peer RST or retry exhaustion. *)

(** {1 Creation} — used by {!Stack}, not by applications directly. *)

type actions = {
  emit : Tcpfo_packet.Tcp_segment.t -> unit;
      (** transmit a segment to the peer *)
  on_delete : unit -> unit;  (** remove me from the demux table *)
}

val create_active :
  Tcpfo_sim.Clock.t ->
  ?obs:Tcpfo_obs.Obs.t ->
  config:Tcp_config.t ->
  local:Tcpfo_packet.Ipaddr.t * int ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  iss:Tcpfo_util.Seq32.t ->
  actions ->
  t
(** Client-side open: emits the initial SYN immediately. *)

val create_passive :
  Tcpfo_sim.Clock.t ->
  ?obs:Tcpfo_obs.Obs.t ->
  config:Tcp_config.t ->
  local:Tcpfo_packet.Ipaddr.t * int ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  iss:Tcpfo_util.Seq32.t ->
  actions ->
  syn:Tcpfo_packet.Tcp_segment.t ->
  t
(** Server-side open from a received SYN: emits the SYN-ACK. *)

val segment_arrives : t -> Tcpfo_packet.Tcp_segment.t -> unit

(** {1 Application interface} *)

val send : t -> string -> int
(** Append to the send buffer; returns bytes accepted (0 when full or when
    sending is no longer allowed). *)

val send_space : t -> int
(** Free send-buffer space. *)

val close : t -> unit
(** Orderly release: FIN after all buffered data.  Further [send]s are
    rejected. *)

val abort : t -> unit
(** Send RST and drop the connection. *)

val state : t -> state
val local_endpoint : t -> Tcpfo_packet.Ipaddr.t * int
val remote_endpoint : t -> Tcpfo_packet.Ipaddr.t * int
val effective_mss : t -> int
(** min(our configured MSS, peer's advertised MSS). *)

val iss : t -> Tcpfo_util.Seq32.t
val snd_una : t -> Tcpfo_util.Seq32.t
val snd_nxt : t -> Tcpfo_util.Seq32.t
val rcv_nxt : t -> Tcpfo_util.Seq32.t

val snd_wnd : t -> int
(** Peer's advertised window, descaled to bytes (RFC 7323). *)

val timestamps_enabled : t -> bool
val sack_enabled : t -> bool
val srtt : t -> Tcpfo_sim.Time.t option
(** Smoothed round-trip estimate, once at least one sample exists. *)

val snd_max : t -> Tcpfo_util.Seq32.t
(** Highest sequence number ever transmitted. *)

val rcv_wscale : t -> int
(** Shift applied to our advertised window (0 when scaling is off). *)

val fin_queued : t -> bool
val fin_sent : t -> bool
val rcv_fin : t -> Tcpfo_util.Seq32.t option
val eof_signalled : t -> bool

val receive_window : t -> int
(** Current receive window in bytes (before 16-bit field scaling). *)

(** {1 Hot state transfer}

    A connection can be frozen into a plain-data {!snapshot}, shipped to
    another host, and {!restore}d into a fresh TCB that resumes exactly
    where the original stood.  The application layer is rebuilt by
    replaying the retained input ({!resume_restored}); the output it
    regenerates is swallowed up to the snapshot point, so the wire
    stream continues byte-for-byte (paper §3.4 transparency, extended to
    replica reintegration). *)

type snapshot = {
  sn_state : state;
  sn_local : Tcpfo_packet.Ipaddr.t * int;
  sn_remote : Tcpfo_packet.Ipaddr.t * int;
  sn_iss : Tcpfo_util.Seq32.t;
  sn_sndbuf_start : int;
  sn_sndbuf_data : string;
  sn_snd_una : Tcpfo_util.Seq32.t;
  sn_snd_max : Tcpfo_util.Seq32.t;
  sn_snd_wnd : int;
  sn_snd_wl1 : Tcpfo_util.Seq32.t;
  sn_snd_wl2 : Tcpfo_util.Seq32.t;
  sn_peer_mss : int;
  sn_snd_wscale : int;
  sn_rcv_wscale : int;
  sn_ts_on : bool;
  sn_ts_recent : int;
  sn_sack_on : bool;
  sn_sack_ranges : (Tcpfo_util.Seq32.t * Tcpfo_util.Seq32.t) list;
  sn_fin_queued : bool;
  sn_fin_sent : bool;
  sn_irs : Tcpfo_util.Seq32.t;
  sn_rcv_nxt : Tcpfo_util.Seq32.t;
  sn_reasm : (Tcpfo_util.Seq32.t * string) list;
  sn_rcv_fin : Tcpfo_util.Seq32.t option;
  sn_eof_signalled : bool;
  sn_srtt : float option;
  sn_rttvar : float;
  sn_rto_base : int;
  sn_rto_shift : int;
  sn_cwnd : int;
  sn_ssthresh : int;
  sn_retained_input : string list;
      (** in-order application-delivery chunks, boundaries preserved *)
  sn_replay_base : int;
      (** input-stream offset where [sn_retained_input] begins: 0 for a
          full history, positive after a {!checkpoint} truncated the
          prefix (the restored replica's replay starts mid-stream) *)
}

val enable_input_retention : t -> unit
(** Start keeping every in-order byte delivered to the application, so
    the connection becomes transferable.  Idempotent.  The failover
    orchestrator enables this on every replicated server connection at
    accept time.  Retained input is capped by
    {!Tcp_config.retention_budget}: once in-order deliveries outgrow
    it, the history is dropped, the connection stops being transferable
    (re-enabling is a no-op — the replay prefix is gone), and
    [statex.retention_overflows] is bumped.  A no-op after such an
    overflow; only {!checkpoint} can resurrect retention, because it
    carries the application's declaration that the lost prefix is not
    needed.

    When {!Tcp_config.checkpoint_interval} is set, enabling retention
    also starts the periodic checkpoint timer. *)

val input_retention_enabled : t -> bool

val input_retention_overflowed : t -> bool
(** The retention budget was exceeded at some point: the connection
    can no longer be hot-transferred and will be isolated (continue
    solo) at the next reintegration — unless a later {!checkpoint}
    resurrects retention. *)

val checkpoint : t -> unit
(** Application checkpoint: truncate the retained input history at the
    current delivery boundary.  The caller declares its per-connection
    state no longer depends on the truncated prefix, so a restored
    replica's replay starts at the checkpoint instead of byte 0 — this
    both bounds snapshot size (delta snapshots ship only post-checkpoint
    input) and keeps long-lived connections under
    {!Tcp_config.retention_budget} forever.  After an overflow the same
    declaration covers the lost prefix, so retention and
    transferability are resurrected at the current input position.
    Bumps [statex.checkpoints]; truncated bytes are accounted in
    [statex.retention_truncated_bytes].  A no-op on connections that
    never retained.  Driven periodically by
    {!Tcp_config.checkpoint_interval} when set — only safe for
    applications whose state rebuilds from any delivery boundary;
    stateful ones call this explicitly at their own safe points. *)

val replay_base : t -> int
(** Input-stream offset where the retained history begins (0 until the
    first checkpoint truncation). *)

val retained_input_bytes : t -> int
(** Bytes currently held in the retained input history. *)

val snapshot : t -> snapshot
(** Freeze the current connection state.  The caller is responsible for
    quiescing output around the capture (the bridge's per-connection
    hold does this). *)

val shift_snapshot : snapshot -> int -> snapshot
(** [shift_snapshot s n] translates the send-side sequence space by [n]
    (receive side untouched) — used to move a snapshot from the
    surviving primary's space into the wire/secondary space (−Δseq)
    before shipping. *)

val restore :
  Tcpfo_sim.Clock.t ->
  ?obs:Tcpfo_obs.Obs.t ->
  config:Tcp_config.t ->
  actions ->
  snapshot ->
  t
(** Rebuild a TCB from a snapshot on this host.  Emits nothing; timers
    are re-armed by {!resume_restored}. *)

val resume_restored : t -> unit
(** Fire the application callbacks as history replay (established →
    retained input → EOF if signalled), re-arm keepalive/retransmission,
    and resume output.  Call after the service's accept handler has
    installed its callbacks on the restored TCB.

    Output the application regenerates from inside the replay callbacks
    is swallowed up to the snapshot point (replayed sends never exert
    backpressure, so a drain-pumped writer regenerates its whole history
    without yielding).  When the replay returns, any unregenerated
    remainder is cancelled — the snapshot's send buffer already carries
    every unacknowledged byte — so an application that cannot regenerate
    its output (e.g. a relay fed by another connection, which must skip
    forwards while {!replaying} is true) resumes cleanly: everything it
    sends after the replay is treated as new data. *)

val replaying : t -> bool
(** True while {!resume_restored} is replaying history into the
    application callbacks.  Output sent back to THIS connection during
    replay is swallowed up to the snapshot point, but an application
    that couples connections (a relay forwarding bytes from one to
    another) must check this and skip the cross-connection forward: the
    replayed input was already forwarded by the original replica, and
    the partner connection's restored stream position accounts for it. *)

(** {1 Statistics} *)

val bytes_sent : t -> int
(** Distinct payload bytes accepted from the application and transmitted at
    least once. *)

val bytes_acked : t -> int
val bytes_received : t -> int
val retransmits : t -> int
val segments_in : t -> int
val segments_out : t -> int
