module Clock = Tcpfo_sim.Clock
module Seq32 = Tcpfo_util.Seq32
module Rng = Tcpfo_util.Rng
module Ipaddr = Tcpfo_packet.Ipaddr
module Seg = Tcpfo_packet.Tcp_segment
module Ip_layer = Tcpfo_ip.Ip_layer
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

type key = Ipaddr.t * int * Ipaddr.t * int (* local, lport, remote, rport *)

type t = {
  clock : Clock.t;
  ip : Ip_layer.t;
  config : Tcp_config.t;
  rng : Rng.t;
  obs : Obs.t; (* the host scope narrowed to "tcp" *)
  conns : (key, Tcb.t) Hashtbl.t;
  listeners : (int, Tcb.t -> unit) Hashtbl.t;
  mutable extra_local : Ipaddr.t -> bool;
  mutable next_ephemeral : int;
  rst_sent : Registry.counter;
  connections : Registry.gauge;
}

let config t = t.config
let ip t = t.ip
let set_extra_local t p = t.extra_local <- p
let connection_count t = Hashtbl.length t.conns

let sync_conn_gauge t =
  Registry.Gauge.set t.connections (Hashtbl.length t.conns)

let local_ok t addr =
  Ip_layer.is_local_address t.ip addr || t.extra_local addr

let find t ~local:(la, lp) ~remote:(ra, rp) =
  Hashtbl.find_opt t.conns (la, lp, ra, rp)

let fresh_port t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- (if p >= 65535 then 49152 else p + 1);
  p

let send_rst_for t ~src ~dst (seg : Seg.t) =
  if not seg.flags.rst then begin
    Registry.Counter.incr t.rst_sent;
    let rst =
      if seg.flags.ack then
        Seg.make
          ~flags:{ Seg.no_flags with rst = true }
          ~window:0 ~src_port:seg.dst_port ~dst_port:seg.src_port
          ~seq:seg.ack ()
      else
        Seg.make
          ~flags:{ Seg.no_flags with rst = true; ack = true }
          ~ack:(Seq32.add seg.seq (Seg.seq_length seg))
          ~window:0 ~src_port:seg.dst_port ~dst_port:seg.src_port
          ~seq:Seq32.zero ()
    in
    (* src/dst swapped: we answer as the destination of the offender *)
    Ip_layer.send_tcp t.ip ~src:dst ~dst:src rst
  end

let actions_for t key (local, remote) =
  {
    Tcb.emit =
      (fun seg ->
        Ip_layer.send_tcp t.ip ~src:(fst local) ~dst:(fst remote) seg);
    on_delete =
      (fun () ->
        Hashtbl.remove t.conns key;
        sync_conn_gauge t);
  }

let fresh_iss t =
  match t.config.iss_override with
  | Some v -> Seq32.of_int v
  | None -> Seq32.of_int (Rng.bits32 t.rng)

let handle_segment t ~src ~dst (seg : Seg.t) =
  let key = (dst, seg.dst_port, src, seg.src_port) in
  match Hashtbl.find_opt t.conns key with
  | Some tcb -> Tcb.segment_arrives tcb seg
  | None -> (
    match Hashtbl.find_opt t.listeners seg.dst_port with
    | Some on_accept
      when seg.flags.syn && (not seg.flags.ack) && (not seg.flags.rst)
           && local_ok t dst ->
      let local = (dst, seg.dst_port) and remote = (src, seg.src_port) in
      let iss = fresh_iss t in
      (* Register before creating: Tcb emission of the SYN-ACK must find
         the connection present if anything loops back synchronously. *)
      let actions = actions_for t key (local, remote) in
      let tcb =
        Tcb.create_passive t.clock ~obs:t.obs ~config:t.config ~local ~remote
          ~iss actions ~syn:seg
      in
      Hashtbl.replace t.conns key tcb;
      sync_conn_gauge t;
      on_accept tcb
    | Some _ | None -> send_rst_for t ~src ~dst seg)

let create clock ~ip ~config ~rng =
  let obs = Obs.scope (Ip_layer.obs ip) "tcp" in
  let t =
    {
      clock;
      ip;
      config;
      rng;
      obs;
      conns = Hashtbl.create 64;
      listeners = Hashtbl.create 8;
      extra_local = (fun _ -> false);
      next_ephemeral = 49152;
      rst_sent = Obs.counter obs "rst_sent";
      connections = Obs.gauge obs "connections";
    }
  in
  Ip_layer.set_tcp_handler ip (fun ~src ~dst seg ->
      handle_segment t ~src ~dst seg);
  t

let listen t ~port ~on_accept = Hashtbl.replace t.listeners port on_accept
let unlisten t ~port = Hashtbl.remove t.listeners port

let connect t ?local ?local_port ~remote () =
  let local_addr =
    match local with
    | Some a ->
      if not (local_ok t a) then
        invalid_arg "Stack.connect: source address not local";
      a
    | None -> (
      match Ip_layer.addresses t.ip with
      | a :: _ -> a
      | [] -> invalid_arg "Stack.connect: host has no address")
  in
  let lport = match local_port with Some p -> p | None -> fresh_port t in
  let local = (local_addr, lport) in
  let key = (local_addr, lport, fst remote, snd remote) in
  if Hashtbl.mem t.conns key then
    invalid_arg "Stack.connect: connection already exists";
  let iss = fresh_iss t in
  let actions = actions_for t key (local, remote) in
  let tcb =
    Tcb.create_active t.clock ~obs:t.obs ~config:t.config ~local ~remote ~iss
      actions
  in
  Hashtbl.replace t.conns key tcb;
  sync_conn_gauge t;
  tcb

let adopt t ~local ~remote ~make =
  let key = (fst local, snd local, fst remote, snd remote) in
  if Hashtbl.mem t.conns key then
    Error "Stack.adopt: connection already exists"
  else begin
    let actions = actions_for t key (local, remote) in
    let tcb = make actions in
    Hashtbl.replace t.conns key tcb;
    sync_conn_gauge t;
    Ok tcb
  end

let connections t =
  let cmp (la, lp, ra, rp) (la', lp', ra', rp') =
    let c = Ipaddr.compare la la' in
    if c <> 0 then c
    else
      let c = compare lp lp' in
      if c <> 0 then c
      else
        let c = Ipaddr.compare ra ra' in
        if c <> 0 then c else compare rp rp'
  in
  Hashtbl.fold (fun k tcb acc -> (k, tcb) :: acc) t.conns []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)
  |> List.map snd

let clock t = t.clock
let obs t = t.obs
