module Clock = Tcpfo_sim.Clock
module Seq32 = Tcpfo_util.Seq32
module Rng = Tcpfo_util.Rng
module Ipaddr = Tcpfo_packet.Ipaddr
module Seg = Tcpfo_packet.Tcp_segment
module Ip_layer = Tcpfo_ip.Ip_layer
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

(* Per-segment demultiplexing is the hottest lookup in the simulator, so
   the 4-tuple is packed into a single immediate int and hashed with a
   dedicated integer mix: no tuple allocation per lookup and no call
   into caml's structural hashing.

   A full IPv4 4-tuple is 96 bits — too wide for one OCaml int — so
   addresses are interned into per-stack 15-bit ids (first-seen order;
   a host sees far fewer than 32768 distinct peers) and the key packs
   [lid:15 | lport:16 | rid:15 | rport:16] = 62 bits, injectively. *)
module Key = struct
  type t = int

  let equal (a : int) (b : int) = a = b

  (* splitmix64-style finalizer with the multipliers truncated to odd
     62-bit constants (OCaml ints are 63-bit); [land max_int] keeps the
     result non-negative *)
  let hash k =
    let h = k lxor (k lsr 30) in
    let h = h * 0x3f58476d1ce4e5b9 in
    let h = h lxor (h lsr 27) in
    let h = h * 0x14d049bb133111eb in
    (h lxor (h lsr 31)) land max_int
end

module Ctbl = Hashtbl.Make (Key)

let max_addr_id = 0x7FFF

let pack ~lid ~lport ~rid ~rport =
  (((lid lsl 16) lor lport) lsl 31) lor ((rid lsl 16) lor rport)

type t = {
  clock : Clock.t;
  ip : Ip_layer.t;
  config : Tcp_config.t;
  rng : Rng.t;
  obs : Obs.t; (* the host scope narrowed to "tcp" *)
  conns : Tcb.t Ctbl.t;
  addr_ids : int Ctbl.t; (* Ipaddr.to_int -> intern id, first-seen order *)
  mutable next_addr_id : int;
  listeners : (int, Tcb.t -> unit) Hashtbl.t;
  mutable extra_local : Ipaddr.t -> bool;
  mutable next_ephemeral : int;
  rst_sent : Registry.counter;
  connections : Registry.gauge;
  demux_hits : Registry.counter;
  demux_misses : Registry.counter;
}

let config t = t.config
let ip t = t.ip
let set_extra_local t p = t.extra_local <- p
let connection_count t = Ctbl.length t.conns

let intern t addr =
  let a = Ipaddr.to_int addr in
  match Ctbl.find t.addr_ids a with
  | id -> id
  | exception Not_found ->
    let id = t.next_addr_id in
    if id > max_addr_id then
      invalid_arg "Stack: more than 32768 distinct addresses on one stack";
    t.next_addr_id <- id + 1;
    Ctbl.add t.addr_ids a id;
    id

let key_of t ~local:(la, lp) ~remote:(ra, rp) =
  pack ~lid:(intern t la) ~lport:lp ~rid:(intern t ra) ~rport:rp

let sync_conn_gauge t =
  Registry.Gauge.set t.connections (Ctbl.length t.conns)

let local_ok t addr =
  Ip_layer.is_local_address t.ip addr || t.extra_local addr

let find t ~local ~remote =
  Ctbl.find_opt t.conns (key_of t ~local ~remote)

let fresh_port t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- (if p >= 65535 then 49152 else p + 1);
  p

let send_rst_for t ~src ~dst (seg : Seg.t) =
  if not seg.flags.rst then begin
    Registry.Counter.incr t.rst_sent;
    let rst =
      if seg.flags.ack then
        Seg.make
          ~flags:{ Seg.no_flags with rst = true }
          ~window:0 ~src_port:seg.dst_port ~dst_port:seg.src_port
          ~seq:seg.ack ()
      else
        Seg.make
          ~flags:{ Seg.no_flags with rst = true; ack = true }
          ~ack:(Seq32.add seg.seq (Seg.seq_length seg))
          ~window:0 ~src_port:seg.dst_port ~dst_port:seg.src_port
          ~seq:Seq32.zero ()
    in
    (* src/dst swapped: we answer as the destination of the offender *)
    Ip_layer.send_tcp t.ip ~src:dst ~dst:src rst
  end

let actions_for t key (local, remote) =
  {
    Tcb.emit =
      (fun seg ->
        Ip_layer.send_tcp t.ip ~src:(fst local) ~dst:(fst remote) seg);
    on_delete =
      (fun () ->
        Ctbl.remove t.conns key;
        sync_conn_gauge t);
  }

let fresh_iss t =
  match t.config.iss_override with
  | Some v -> Seq32.of_int v
  | None -> Seq32.of_int (Rng.bits32 t.rng)

let handle_segment t ~src ~dst (seg : Seg.t) =
  let key =
    pack ~lid:(intern t dst) ~lport:seg.dst_port ~rid:(intern t src)
      ~rport:seg.src_port
  in
  match Ctbl.find t.conns key with
  | tcb ->
    Registry.Counter.incr t.demux_hits;
    Tcb.segment_arrives tcb seg
  | exception Not_found -> (
    Registry.Counter.incr t.demux_misses;
    match Hashtbl.find_opt t.listeners seg.dst_port with
    | Some on_accept
      when seg.flags.syn && (not seg.flags.ack) && (not seg.flags.rst)
           && local_ok t dst ->
      let local = (dst, seg.dst_port) and remote = (src, seg.src_port) in
      let iss = fresh_iss t in
      (* Register before creating: Tcb emission of the SYN-ACK must find
         the connection present if anything loops back synchronously. *)
      let actions = actions_for t key (local, remote) in
      let tcb =
        Tcb.create_passive t.clock ~obs:t.obs ~config:t.config ~local ~remote
          ~iss actions ~syn:seg
      in
      Ctbl.replace t.conns key tcb;
      sync_conn_gauge t;
      on_accept tcb
    | Some _ | None -> send_rst_for t ~src ~dst seg)

let create clock ~ip ~config ~rng =
  let obs = Obs.scope (Ip_layer.obs ip) "tcp" in
  let t =
    {
      clock;
      ip;
      config;
      rng;
      obs;
      conns = Ctbl.create 64;
      addr_ids = Ctbl.create 16;
      next_addr_id = 0;
      listeners = Hashtbl.create 8;
      extra_local = (fun _ -> false);
      next_ephemeral = 49152;
      rst_sent = Obs.counter obs "rst_sent";
      connections = Obs.gauge obs "connections";
      demux_hits = Obs.counter obs "demux_hits";
      demux_misses = Obs.counter obs "demux_misses";
    }
  in
  Ip_layer.set_tcp_handler ip (fun ~src ~dst seg ->
      handle_segment t ~src ~dst seg);
  t

let listen t ~port ~on_accept = Hashtbl.replace t.listeners port on_accept
let unlisten t ~port = Hashtbl.remove t.listeners port

let connect t ?local ?local_port ~remote () =
  let local_addr =
    match local with
    | Some a ->
      if not (local_ok t a) then
        invalid_arg "Stack.connect: source address not local";
      a
    | None -> (
      match Ip_layer.addresses t.ip with
      | a :: _ -> a
      | [] -> invalid_arg "Stack.connect: host has no address")
  in
  let lport = match local_port with Some p -> p | None -> fresh_port t in
  let local = (local_addr, lport) in
  let key = key_of t ~local ~remote in
  if Ctbl.mem t.conns key then
    invalid_arg "Stack.connect: connection already exists";
  let iss = fresh_iss t in
  let actions = actions_for t key (local, remote) in
  let tcb =
    Tcb.create_active t.clock ~obs:t.obs ~config:t.config ~local ~remote ~iss
      actions
  in
  Ctbl.replace t.conns key tcb;
  sync_conn_gauge t;
  tcb

let adopt t ~local ~remote ~make =
  let key = key_of t ~local ~remote in
  if Ctbl.mem t.conns key then Error "Stack.adopt: connection already exists"
  else begin
    let actions = actions_for t key (local, remote) in
    let tcb = make actions in
    Ctbl.replace t.conns key tcb;
    sync_conn_gauge t;
    Ok tcb
  end

(* Sorted by the real 4-tuple, not the packed key: intern ids depend on
   first-contact order, and reintegration's transfer order must stay
   byte-identical to the pre-packing implementation. *)
let connections t =
  let cmp a b =
    let (la, lp), (ra, rp) = (Tcb.local_endpoint a, Tcb.remote_endpoint a) in
    let (la', lp'), (ra', rp') =
      (Tcb.local_endpoint b, Tcb.remote_endpoint b)
    in
    let c = Ipaddr.compare la la' in
    if c <> 0 then c
    else
      let c = compare lp lp' in
      if c <> 0 then c
      else
        let c = Ipaddr.compare ra ra' in
        if c <> 0 then c else compare rp rp'
  in
  Ctbl.fold (fun _ tcb acc -> tcb :: acc) t.conns [] |> List.sort cmp

let clock t = t.clock
let obs t = t.obs

module For_testing = struct
  let pack = pack
  let hash = Key.hash
  let key_of = key_of
  let intern = intern

  let unpack k =
    let lhalf = k lsr 31 and rhalf = k land 0x7FFFFFFF in
    (lhalf lsr 16, lhalf land 0xFFFF, rhalf lsr 16, rhalf land 0xFFFF)
end
