module Clock = Tcpfo_sim.Clock
module Time = Tcpfo_sim.Time
module Seq32 = Tcpfo_util.Seq32
module Bytebuf = Tcpfo_util.Bytebuf
module Rangeset = Tcpfo_util.Rangeset
module Interval_buf = Tcpfo_util.Interval_buf
module Ipaddr = Tcpfo_packet.Ipaddr
module Seg = Tcpfo_packet.Tcp_segment
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

type state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

let state_to_string = function
  | Syn_sent -> "SYN_SENT"
  | Syn_received -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"
  | Closed -> "CLOSED"

type actions = { emit : Seg.t -> unit; on_delete : unit -> unit }

type t = {
  clock : Clock.t;
  config : Tcp_config.t;
  local : Ipaddr.t * int;
  remote : Ipaddr.t * int;
  actions : actions;
  mutable state : state;
  (* --- send side --- *)
  iss : Seq32.t;
  mutable sndbuf : Bytebuf.t; (* buffer offset o <-> sequence iss+1+o *)
  mutable snd_una : Seq32.t;
  mutable snd_nxt : Seq32.t;
  mutable snd_max : Seq32.t; (* highest sequence ever transmitted *)
  mutable snd_wnd : int;
  mutable snd_wl1 : Seq32.t;
  mutable snd_wl2 : Seq32.t;
  mutable peer_mss : int;
  mutable snd_wscale : int; (* shift applied to the peer's window fields *)
  mutable rcv_wscale : int; (* shift applied to our advertised window *)
  mutable ts_on : bool; (* RFC 7323 timestamps negotiated *)
  mutable ts_recent : int; (* latest in-order TSval from the peer *)
  mutable sack_on : bool; (* RFC 2018 negotiated *)
  sack_board : Rangeset.t; (* ranges the peer holds beyond snd_una *)
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  mutable send_full : bool; (* a send was refused; fire on_drain later *)
  (* --- receive side --- *)
  mutable irs : Seq32.t;
  mutable rcv_nxt : Seq32.t;
  mutable reasm : Interval_buf.t;
  mutable rcv_fin : Seq32.t option; (* position of the peer's FIN *)
  mutable eof_signalled : bool;
  mutable recv_paused : bool;
  recv_pending : Buffer.t; (* in-order bytes awaiting a paused reader *)
  (* --- timers --- *)
  rto : Rto.t;
  mutable rtx_timer : Tcpfo_sim.Engine.event_id option;
  mutable delack_timer : Tcpfo_sim.Engine.event_id option;
  mutable timewait_timer : Tcpfo_sim.Engine.event_id option;
  mutable persist_timer : Tcpfo_sim.Engine.event_id option;
  mutable persist_shift : int;
  mutable keepalive_timer : Tcpfo_sim.Engine.event_id option;
  mutable ka_probes_sent : int;
  mutable last_activity : Time.t;
  mutable retry_count : int;
  mutable rtt_probe : (Seq32.t * Time.t) option;
  (* --- congestion --- *)
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dupacks : int;
  (* --- state transfer --- *)
  mutable retained : string list option;
      (* every in-order chunk ever delivered to the application (reversed),
         kept so a restored replica can replay the input and regenerate
         the output stream (hot state transfer).  Chunk boundaries are
         preserved: a service may frame its replies per delivery, so
         replaying a coalesced blob would regenerate different output *)
  mutable resync_skip : int;
      (* app-stream bytes of regenerated output to swallow after a
         restore: everything below the snapshotted send-buffer end was
         either acked or shipped inside the snapshot *)
  mutable retained_bytes : int;
      (* bytes currently held in [retained]; bounded by
         [config.retention_budget] *)
  mutable replaying : bool;
      (* inside resume_restored's history replay: callbacks fired now
         replay input the original already acted on, so applications
         coupling connections (relays) must not re-forward it *)
  mutable retention_overflowed : bool;
      (* the budget was exceeded: history dropped, connection not
         transferable until an application checkpoint declares the lost
         prefix unnecessary *)
  mutable checkpoint_base : int;
      (* input-stream offset (bytes delivered to the application) where
         the retained history begins: 0 until the first checkpoint
         truncates the history.  Ships as [sn_replay_base] so a restored
         replica knows its replay starts mid-stream. *)
  mutable checkpoint_timer : Tcpfo_sim.Engine.event_id option;
      (* periodic {!checkpoint} driver ([config.checkpoint_interval]) *)
  (* --- callbacks --- *)
  mutable on_established : unit -> unit;
  mutable on_data : string -> unit;
  mutable on_eof : unit -> unit;
  mutable on_drain : unit -> unit;
  mutable on_close : unit -> unit;
  mutable on_reset : unit -> unit;
  (* --- stats --- *)
  mutable n_bytes_acked : int;
  mutable n_bytes_received : int;
  mutable n_retransmits : int;
  mutable n_segments_in : int;
  mutable n_segments_out : int;
  c_retransmits : Registry.counter; (* stack-wide [tcp.retransmits] *)
  c_retention_bytes : Registry.counter;
      (* world-absolute [statex.retention_bytes]: cumulative bytes ever
         retained for transfer, all connections *)
  c_retention_overflows : Registry.counter;
      (* world-absolute [statex.retention_overflows]: connections that
         outgrew the budget and lost transferability *)
  c_checkpoints : Registry.counter;
      (* world-absolute [statex.checkpoints]: application checkpoints
         taken (timer-driven and explicit) *)
  c_retention_truncated : Registry.counter;
      (* world-absolute [statex.retention_truncated_bytes]: retained
         input dropped at checkpoint boundaries *)
}

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)

let set_on_established t f = t.on_established <- f
let set_on_data t f = t.on_data <- f
let set_on_eof t f = t.on_eof <- f
let set_on_drain t f = t.on_drain <- f
let set_on_close t f = t.on_close <- f
let set_on_reset t f = t.on_reset <- f

let state t = t.state
let local_endpoint t = t.local
let remote_endpoint t = t.remote
let effective_mss t = min t.config.mss t.peer_mss
let iss t = t.iss
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let rcv_nxt t = t.rcv_nxt
let snd_wnd t = t.snd_wnd
let timestamps_enabled t = t.ts_on
let sack_enabled t = t.sack_on
let srtt t = Rto.srtt t.rto
let bytes_acked t = t.n_bytes_acked
let bytes_received t = t.n_bytes_received
let bytes_sent t = Bytebuf.end_offset t.sndbuf
let retransmits t = t.n_retransmits
let segments_in t = t.n_segments_in
let segments_out t = t.n_segments_out

(* Sequence <-> send-buffer offset mapping. *)
let seq_of_offset t o = Seq32.add t.iss (1 + o)
let offset_of_seq t s = Seq32.diff s t.iss - 1

(* Sequence position of our FIN; meaningful only once [fin_queued]. *)
let fin_seq t = seq_of_offset t (Bytebuf.end_offset t.sndbuf)

let rcv_wnd t =
  (* Window = receive buffer minus bytes parked out of order in
     reassembly and minus in-order bytes a paused reader has not yet
     consumed; representable range grows with window scaling. *)
  max 0
    (min (65535 lsl t.rcv_wscale)
       (t.config.recv_buf_size
       - Interval_buf.total_buffered t.reasm
       - Buffer.length t.recv_pending))

(* value of the 16-bit window field on a non-SYN segment *)
let advertised_window t = min 0xFFFF (rcv_wnd t asr t.rcv_wscale)

let now_ms t = t.clock.now () / 1_000_000

let ts_option t =
  if t.ts_on then [ Seg.Timestamps (now_ms t land 0xFFFFFFFF, t.ts_recent) ]
  else []

(* RFC 2018: report up to three out-of-order islands *)
let sack_blocks t =
  if not t.sack_on then []
  else
    match Interval_buf.spans t.reasm with
    | [] -> []
    | spans ->
      (* capped at two blocks so that a diverted copy (which gains the
         6-byte Orig_dst option) still fits the 40-byte option space *)
      let blocks =
        List.filteri (fun i _ -> i < 2) spans
        |> List.map (fun (lo, len) -> (lo, Seq32.add lo len))
      in
      [ Seg.Sack blocks ]

(* options we offer on our SYN / SYN-ACK *)
let syn_options t =
  [ Seg.Mss t.config.mss ]
  @ (if t.config.window_scale > 0 then
       [ Seg.Window_scale t.config.window_scale ]
     else [])
  @ (if t.config.sack then [ Seg.Sack_permitted ] else [])
  @
  if t.config.timestamps then
    [ Seg.Timestamps (now_ms t land 0xFFFFFFFF, t.ts_recent) ]
  else []

(* ------------------------------------------------------------------ *)
(* Timer plumbing                                                     *)

let cancel_timer t slot =
  match slot with
  | Some id ->
    t.clock.cancel id;
    None
  | None -> None

let cancel_all_timers t =
  t.rtx_timer <- cancel_timer t t.rtx_timer;
  t.delack_timer <- cancel_timer t t.delack_timer;
  t.timewait_timer <- cancel_timer t t.timewait_timer;
  t.persist_timer <- cancel_timer t t.persist_timer;
  t.keepalive_timer <- cancel_timer t t.keepalive_timer;
  t.checkpoint_timer <- cancel_timer t t.checkpoint_timer

let delete t =
  if t.state <> Closed then begin
    t.state <- Closed;
    cancel_all_timers t;
    t.actions.on_delete ()
  end

(* ------------------------------------------------------------------ *)
(* Segment emission                                                   *)

let emit t seg =
  t.n_segments_out <- t.n_segments_out + 1;
  t.actions.emit seg

let mk_seg t ?(payload = "") ?(options = []) ~flags ~seq () =
  let options = options @ ts_option t @ sack_blocks t in
  Seg.make ~flags ~ack:t.rcv_nxt
    ~window:(advertised_window t)
    ~options ~payload ~src_port:(snd t.local) ~dst_port:(snd t.remote) ~seq
    ()

let ack_flags = { Seg.no_flags with ack = true }

let send_ack_now t =
  t.delack_timer <- cancel_timer t t.delack_timer;
  emit t (mk_seg t ~flags:ack_flags ~seq:t.snd_nxt ())

let send_rst t ~seq =
  emit t
    (Seg.make
       ~flags:{ Seg.no_flags with rst = true; ack = true }
       ~ack:t.rcv_nxt ~window:0 ~src_port:(snd t.local)
       ~dst_port:(snd t.remote) ~seq ())

(* Keepalive (RFC 1122 4.2.3.6): after [keepalive] of silence on an
   established connection, probe with a zero-length segment one byte
   below snd_una; an alive peer answers a duplicate ACK.  After
   [keepalive_probes] unanswered probes the connection is reset. *)
let rec arm_keepalive t =
  match t.config.keepalive with
  | None -> ()
  | Some interval ->
    if t.keepalive_timer = None then
      t.keepalive_timer <-
        Some
          (t.clock.schedule interval (fun () ->
               t.keepalive_timer <- None;
               if t.state = Established then begin
                 let idle = t.clock.now () - t.last_activity in
                 if idle >= interval then begin
                   if t.ka_probes_sent >= t.config.keepalive_probes then begin
                     let cb = t.on_reset in
                     delete t;
                     cb ()
                   end
                   else begin
                     t.ka_probes_sent <- t.ka_probes_sent + 1;
                     emit t
                       (mk_seg t ~flags:ack_flags
                          ~seq:(Seq32.add t.snd_una (-1))
                          ());
                     arm_keepalive t
                   end
                 end
                 else arm_keepalive t
               end))

(* ------------------------------------------------------------------ *)
(* Output engine                                                      *)

let flight_size t = Seq32.diff t.snd_nxt t.snd_una

let effective_window t =
  let w = if t.config.congestion_control then min t.snd_wnd t.cwnd
          else t.snd_wnd in
  max 0 w

let can_send_data t =
  match t.state with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack -> true
  | Syn_sent | Syn_received | Fin_wait_2 | Time_wait | Closed -> false
(* Fin_wait_1/Closing/Last_ack: data already queued before close may still
   be draining. *)

let stop_persist t = t.persist_timer <- cancel_timer t t.persist_timer

let rec arm_rtx t =
  if t.rtx_timer = None then begin
    let delay = Rto.current t.rto in
    t.rtx_timer <- Some (t.clock.schedule delay (fun () -> on_rtx t))
  end

and restart_rtx t =
  t.rtx_timer <- cancel_timer t t.rtx_timer;
  arm_rtx t

(* Retransmit the first unacknowledged chunk (go-back from snd_una). *)
and retransmit_one t =
  t.n_retransmits <- t.n_retransmits + 1;
  Registry.Counter.incr t.c_retransmits;
  t.rtt_probe <- None (* Karn's rule *);
  match t.state with
  | Syn_sent ->
    emit t
      (Seg.make
         ~flags:{ Seg.no_flags with syn = true }
         ~window:(min 0xFFFF (rcv_wnd t))
         ~options:(syn_options t) ~src_port:(snd t.local)
         ~dst_port:(snd t.remote) ~seq:t.iss ())
  | Syn_received ->
    emit t
      (Seg.make
         ~flags:{ Seg.no_flags with syn = true; ack = true }
         ~ack:t.rcv_nxt
         ~window:(min 0xFFFF (rcv_wnd t))
         ~options:(syn_options t) ~src_port:(snd t.local)
         ~dst_port:(snd t.remote) ~seq:t.iss ())
  | _ ->
    let data_end = seq_of_offset t (Bytebuf.end_offset t.sndbuf) in
    if Seq32.lt t.snd_una data_end then begin
      (* unacked payload exists: resend one MSS from snd_una *)
      let len = min (effective_mss t) (Seq32.diff data_end t.snd_una) in
      let payload =
        Bytebuf.read t.sndbuf ~pos:(offset_of_seq t t.snd_una) ~len
      in
      let reaches_end = Seq32.equal (Seq32.add t.snd_una len) data_end in
      let fin_here = t.fin_sent && reaches_end in
      let flags = { ack_flags with psh = reaches_end; fin = fin_here } in
      emit t (mk_seg t ~payload ~flags ~seq:t.snd_una ())
    end
    else if t.fin_sent then
      (* only the FIN is outstanding *)
      emit t (mk_seg t ~flags:{ ack_flags with fin = true } ~seq:(fin_seq t) ())
    else send_ack_now t

and on_rtx t =
  t.rtx_timer <- None;
  if t.state <> Closed && Seq32.lt t.snd_una t.snd_max then begin
    t.retry_count <- t.retry_count + 1;
    let limit =
      match t.state with
      | Syn_sent | Syn_received -> t.config.max_syn_retries
      | _ -> t.config.max_data_retries
    in
    if t.retry_count > limit then begin
      let cb = t.on_reset in
      delete t;
      cb ()
    end
    else begin
      (* congestion response to a timeout.  With SACK evidence that most
         of the flight arrived, recovery retransmits the holes at
         ssthresh pace instead of slow-starting from one segment
         (RFC 6675 spirit). *)
      if t.config.congestion_control then begin
        let mss = effective_mss t in
        t.ssthresh <- max (flight_size t / 2) (2 * mss);
        t.cwnd <-
          (if t.sack_on && not (Rangeset.is_empty t.sack_board) then
             t.ssthresh
           else mss)
      end;
      Rto.backoff t.rto;
      (match t.state with
      | Syn_sent | Syn_received -> retransmit_one t
      | _ ->
        (* go-back-N: rewind to the first unacknowledged byte and let the
           output engine slow-start through the gap *)
        t.rtt_probe <- None;
        t.snd_nxt <- t.snd_una;
        t.n_retransmits <- t.n_retransmits + 1;
        Registry.Counter.incr t.c_retransmits;
        try_output t);
      arm_rtx t
    end
  end

and arm_persist t =
  if t.persist_timer = None then begin
    let delay =
      min (Rto.current t.rto lsl t.persist_shift) (Time.sec 60.0)
    in
    t.persist_timer <-
      Some
        (t.clock.schedule delay (fun () ->
             t.persist_timer <- None;
             if t.state <> Closed && t.snd_wnd = 0 then begin
               t.persist_shift <- min (t.persist_shift + 1) 6;
               (* 1-byte window probe *)
               let data_end =
                 seq_of_offset t (Bytebuf.end_offset t.sndbuf)
               in
               if Seq32.lt t.snd_nxt data_end then begin
                 let payload =
                   Bytebuf.read t.sndbuf ~pos:(offset_of_seq t t.snd_nxt)
                     ~len:1
                 in
                 emit t (mk_seg t ~payload ~flags:ack_flags ~seq:t.snd_nxt ());
                 (* the probe byte is real data on the wire: account for it
                    (the receiver may accept it even at window zero) *)
                 t.snd_nxt <- Seq32.succ t.snd_nxt;
                 t.snd_max <- Seq32.max t.snd_max t.snd_nxt;
                 arm_rtx t
               end
               else send_ack_now t;
               arm_persist t
             end))
  end

(* Push out as much new data as windows allow. *)
and try_output t =
  if can_send_data t then begin
    let mss = effective_mss t in
    let data_end = seq_of_offset t (Bytebuf.end_offset t.sndbuf) in
    let limit = Seq32.add t.snd_una (effective_window t) in
    let progress = ref true in
    while !progress do
      progress := false;
      (* RFC 2018: never (re)transmit ranges the peer already holds *)
      (match Rangeset.covering_end t.sack_board t.snd_nxt with
      | Some skip_to when Seq32.gt skip_to t.snd_nxt ->
        t.snd_nxt <- Seq32.min skip_to (seq_of_offset t (Bytebuf.end_offset t.sndbuf))
      | Some _ | None -> ());
      let sendable = Seq32.diff data_end t.snd_nxt in
      let window_room = Seq32.diff limit t.snd_nxt in
      let len = min mss (min sendable window_room) in
      if len > 0 then begin
        let nagle_blocked =
          t.config.nagle && len < mss
          && Seq32.lt t.snd_una t.snd_nxt
          && not t.fin_queued
        in
        if not nagle_blocked then begin
          let payload =
            Bytebuf.read t.sndbuf ~pos:(offset_of_seq t t.snd_nxt) ~len
          in
          let reaches_end = Seq32.equal (Seq32.add t.snd_nxt len) data_end in
          let fin_here = t.fin_queued && reaches_end in
          let flags = { ack_flags with psh = reaches_end; fin = fin_here } in
          t.delack_timer <- cancel_timer t t.delack_timer;
          emit t (mk_seg t ~payload ~flags ~seq:t.snd_nxt ());
          t.snd_nxt <- Seq32.add t.snd_nxt (len + if fin_here then 1 else 0);
          let frontier = Seq32.gt t.snd_nxt t.snd_max in
          t.snd_max <- Seq32.max t.snd_max t.snd_nxt;
          if fin_here then fin_was_sent t;
          (* Karn: time only segments that carry new data *)
          if t.rtt_probe = None && frontier then
            t.rtt_probe <- Some (t.snd_nxt, t.clock.now ());
          arm_rtx t;
          progress := true
        end
      end
    done;
    (* FIN with no data left to send (first emission or a post-rewind
       retransmission) *)
    if
      t.fin_queued
      && Seq32.equal t.snd_nxt data_end
      && Seq32.diff limit t.snd_nxt >= 0
    then begin
      t.delack_timer <- cancel_timer t t.delack_timer;
      emit t (mk_seg t ~flags:{ ack_flags with fin = true } ~seq:t.snd_nxt ());
      t.snd_nxt <- Seq32.succ t.snd_nxt;
      t.snd_max <- Seq32.max t.snd_max t.snd_nxt;
      fin_was_sent t;
      arm_rtx t
    end;
    (* zero-window persist *)
    if
      t.snd_wnd = 0
      && Seq32.equal t.snd_una t.snd_nxt
      && Seq32.lt t.snd_nxt data_end
    then arm_persist t
  end

and fin_was_sent t =
  t.fin_sent <- true;
  match t.state with
  | Established | Syn_received -> t.state <- Fin_wait_1
  | Close_wait -> t.state <- Last_ack
  | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait | Closed
  | Syn_sent ->
    ()

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)

let make clock ?obs ~config ~local ~remote ~iss actions state =
  let obs = match obs with Some o -> o | None -> Obs.silent () in
  {
    clock;
    config;
    local;
    remote;
    actions;
    state;
    iss;
    sndbuf = Bytebuf.create ~capacity:config.send_buf_size;
    snd_una = iss;
    snd_nxt = iss;
    snd_max = iss;
    snd_wnd = 0;
    snd_wl1 = Seq32.zero;
    snd_wl2 = Seq32.zero;
    peer_mss = 536;
    snd_wscale = 0;
    rcv_wscale = 0;
    ts_on = false;
    ts_recent = 0;
    sack_on = false;
    sack_board = Rangeset.create ();
    fin_queued = false;
    fin_sent = false;
    send_full = false;
    irs = Seq32.zero;
    rcv_nxt = Seq32.zero;
    reasm = Interval_buf.create ~base:Seq32.zero;
    rcv_fin = None;
    eof_signalled = false;
    recv_paused = false;
    recv_pending = Buffer.create 0;
    rto = Rto.create ~obs ~init:config.rto_init ~min:config.rto_min
        ~max:config.rto_max ();
    rtx_timer = None;
    delack_timer = None;
    timewait_timer = None;
    persist_timer = None;
    persist_shift = 0;
    keepalive_timer = None;
    ka_probes_sent = 0;
    last_activity = clock.now ();
    retry_count = 0;
    rtt_probe = None;
    retained = None;
    resync_skip = 0;
    replaying = false;
    retained_bytes = 0;
    retention_overflowed = false;
    checkpoint_base = 0;
    checkpoint_timer = None;
    cwnd = 2 * config.mss;
    ssthresh = 1 lsl 30 (* RFC 5681: initially arbitrarily high *);
    dupacks = 0;
    on_established = (fun () -> ());
    on_data = (fun _ -> ());
    on_eof = (fun () -> ());
    on_drain = (fun () -> ());
    on_close = (fun () -> ());
    on_reset = (fun () -> ());
    n_bytes_acked = 0;
    n_bytes_received = 0;
    n_retransmits = 0;
    n_segments_in = 0;
    n_segments_out = 0;
    c_retransmits = Obs.counter obs "retransmits";
    c_retention_bytes =
      Obs.counter (Obs.scope (Obs.root obs) "statex") "retention_bytes";
    c_retention_overflows =
      Obs.counter (Obs.scope (Obs.root obs) "statex") "retention_overflows";
    c_checkpoints =
      Obs.counter (Obs.scope (Obs.root obs) "statex") "checkpoints";
    c_retention_truncated =
      Obs.counter
        (Obs.scope (Obs.root obs) "statex")
        "retention_truncated_bytes";
  }

let create_active clock ?obs ~config ~local ~remote ~iss actions =
  let t = make clock ?obs ~config ~local ~remote ~iss actions Syn_sent in
  emit t
    (Seg.make
       ~flags:{ Seg.no_flags with syn = true }
       ~window:(min 0xFFFF (rcv_wnd t))
       ~options:(syn_options t)
       ~src_port:(snd local) ~dst_port:(snd remote) ~seq:iss ());
  t.snd_nxt <- Seq32.succ iss;
  t.snd_max <- t.snd_nxt;
  t.rtt_probe <- Some (t.snd_nxt, t.clock.now ());
  arm_rtx t;
  t

let accept_syn t (syn : Seg.t) =
  t.irs <- syn.seq;
  t.rcv_nxt <- Seq32.succ syn.seq;
  t.reasm <- Interval_buf.create ~base:t.rcv_nxt;
  (match Seg.mss_option syn with
  | Some m -> t.peer_mss <- m
  | None -> t.peer_mss <- 536);
  (* RFC 7323 negotiation: an option is live only if both sides sent it *)
  (match Seg.window_scale_option syn with
  | Some peer_shift when t.config.window_scale > 0 ->
    t.snd_wscale <- min 14 peer_shift;
    t.rcv_wscale <- t.config.window_scale
  | Some _ | None ->
    t.snd_wscale <- 0;
    t.rcv_wscale <- 0);
  (match Seg.timestamps_option syn with
  | Some (tsval, _) when t.config.timestamps ->
    t.ts_on <- true;
    t.ts_recent <- tsval
  | Some _ | None -> t.ts_on <- false);
  t.sack_on <-
    t.config.sack
    && Seg.find_map_option syn (function
         | Seg.Sack_permitted -> Some ()
         | _ -> None)
       <> None;
  t.snd_wnd <- syn.window (* SYN windows are never scaled *);
  t.snd_wl1 <- syn.seq;
  t.snd_wl2 <- syn.ack

let create_passive clock ?obs ~config ~local ~remote ~iss actions ~syn =
  let t = make clock ?obs ~config ~local ~remote ~iss actions Syn_received in
  accept_syn t syn;
  emit t
    (Seg.make
       ~flags:{ Seg.no_flags with syn = true; ack = true }
       ~ack:t.rcv_nxt
       ~window:(min 0xFFFF (rcv_wnd t))
       ~options:(syn_options t) ~src_port:(snd local) ~dst_port:(snd remote)
       ~seq:iss ());
  t.snd_nxt <- Seq32.succ iss;
  t.snd_max <- t.snd_nxt;
  t.rtt_probe <- Some (t.snd_nxt, t.clock.now ());
  arm_rtx t;
  t

(* ------------------------------------------------------------------ *)
(* Application calls                                                  *)

let pause_reading t = t.recv_paused <- true

let resume_reading t =
  if t.recv_paused then begin
    t.recv_paused <- false;
    let closed = rcv_wnd t = 0 in
    if Buffer.length t.recv_pending > 0 then begin
      let data = Buffer.contents t.recv_pending in
      Buffer.clear t.recv_pending;
      t.on_data data
    end;
    (* the window may have been closed: advertise that it reopened *)
    if closed && t.state <> Closed then send_ack_now t
  end

let reading_paused t = t.recv_paused
let recv_queue_length t = Buffer.length t.recv_pending

let send_space t = Bytebuf.free t.sndbuf

let send_rest t data =
  let allowed =
    match t.state with
    | Syn_sent | Syn_received | Established | Close_wait -> not t.fin_queued
    | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait | Closed ->
      false
  in
  if not allowed then 0
  else begin
    let n = Bytebuf.push t.sndbuf data in
    if n < String.length data then t.send_full <- true;
    if n > 0 then try_output t;
    n
  end

let send t data =
  (* After a hot-state restore the application replays its input and
     regenerates output from byte 0; everything below the snapshotted
     send-buffer end offset is already acked or carried in the snapshot
     and must be swallowed, not retransmitted.  The discard path bypasses
     the state/fin checks on purpose: the snapshot may be past
     ESTABLISHED (e.g. FIN_WAIT_1) while the replayed prefix is still
     draining. *)
  if t.resync_skip > 0 then begin
    let n = String.length data in
    if n <= t.resync_skip then begin
      t.resync_skip <- t.resync_skip - n;
      n
    end
    else begin
      let skip = t.resync_skip in
      t.resync_skip <- 0;
      skip + send_rest t (String.sub data skip (n - skip))
    end
  end
  else send_rest t data

let close t =
  match t.state with
  | Closed -> ()
  | Syn_sent ->
    (* nothing established yet: just delete *)
    delete t
  | Time_wait | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack -> ()
  | Syn_received | Established | Close_wait ->
    if not t.fin_queued then begin
      t.fin_queued <- true;
      try_output t
    end

let abort t =
  if t.state <> Closed then begin
    (match t.state with
    | Syn_sent -> ()
    | _ -> send_rst t ~seq:t.snd_nxt);
    delete t
  end

(* ------------------------------------------------------------------ *)
(* TIME_WAIT                                                          *)

let enter_time_wait t =
  let first_entry = t.state <> Time_wait in
  t.state <- Time_wait;
  t.rtx_timer <- cancel_timer t t.rtx_timer;
  t.persist_timer <- cancel_timer t t.persist_timer;
  t.timewait_timer <- cancel_timer t t.timewait_timer;
  t.timewait_timer <-
    Some (t.clock.schedule (2 * t.config.msl) (fun () -> delete t));
  if first_entry then t.on_close ()

(* ------------------------------------------------------------------ *)
(* Input processing                                                   *)

let acceptable_segment t (seg : Seg.t) =
  let wnd = rcv_wnd t in
  let seg_len = Seg.seq_length seg in
  if seg_len = 0 then
    if wnd = 0 then Seq32.equal seg.seq t.rcv_nxt
    else Seq32.between ~low:t.rcv_nxt ~high:(Seq32.add t.rcv_nxt wnd) seg.seq
  else
    (* A segment that starts exactly at rcv_nxt is always acceptable, even
       with a zero window: when reordering parks a full buffer of
       out-of-order data, the advertised window collapses and the
       hole-filling retransmission would otherwise be rejected forever —
       a deadlock a real stack avoids the same way. *)
    Seq32.equal seg.seq t.rcv_nxt
    || (wnd > 0
       && Seq32.lt seg.seq (Seq32.add t.rcv_nxt wnd)
       && Seq32.gt (Seg.seq_end seg) t.rcv_nxt)

let schedule_ack t ~immediate =
  if immediate || not t.config.delayed_ack then send_ack_now t
  else
    match t.delack_timer with
    | Some _ ->
      (* second segment since the last ACK: ack now *)
      send_ack_now t
    | None ->
      t.delack_timer <-
        Some
          (t.clock.schedule t.config.delack_delay (fun () ->
               t.delack_timer <- None;
               if t.state <> Closed then
                 emit t (mk_seg t ~flags:ack_flags ~seq:t.snd_nxt ())))

let process_fin_if_reached t =
  match t.rcv_fin with
  | Some fpos when Seq32.equal t.rcv_nxt fpos ->
    t.rcv_nxt <- Seq32.succ t.rcv_nxt;
    send_ack_now t;
    (* transition BEFORE signalling EOF, so an application that closes
       inside on_eof sees CLOSE_WAIT and ends up in LAST_ACK, not in a
       spurious simultaneous-close *)
    (match t.state with
    | Established -> t.state <- Close_wait
    | Fin_wait_1 ->
      (* our FIN acked? then both sides done *)
      if t.fin_sent && Seq32.ge t.snd_una (Seq32.succ (fin_seq t)) then
        enter_time_wait t
      else t.state <- Closing
    | Fin_wait_2 -> enter_time_wait t
    | Syn_received -> t.state <- Close_wait
    | Close_wait | Closing | Last_ack | Time_wait | Closed | Syn_sent -> ());
    if not t.eof_signalled then begin
      t.eof_signalled <- true;
      t.on_eof ()
    end
  | Some _ | None -> ()

let deliver_payload t (seg : Seg.t) =
  if String.length seg.payload > 0 then begin
    (* SYN consumes a sequence position before the payload *)
    let data_seq = if seg.flags.syn then Seq32.succ seg.seq else seg.seq in
    let in_order = Seq32.equal data_seq t.rcv_nxt in
    Interval_buf.insert t.reasm ~seq:data_seq seg.payload;
    let delivered = Interval_buf.pop t.reasm ~max_len:max_int in
    if String.length delivered > 0 then begin
      t.rcv_nxt <- Seq32.add t.rcv_nxt (String.length delivered);
      t.n_bytes_received <- t.n_bytes_received + String.length delivered;
      (match t.retained with
      | Some chunks ->
        let nb = t.retained_bytes + String.length delivered in
        if nb > t.config.retention_budget then begin
          (* over budget: the replay prefix is irrecoverable, so keeping
             a truncated history would be worse than keeping none.  Drop
             it; the orchestrator isolates the connection at the next
             reintegration — unless a later application {!checkpoint}
             declares the lost prefix unnecessary and resurrects
             retention at the then-current input position. *)
          t.checkpoint_base <- t.checkpoint_base + nb;
          t.retained <- None;
          t.retained_bytes <- 0;
          t.retention_overflowed <- true;
          Registry.Counter.incr t.c_retention_overflows
        end
        else begin
          t.retained <- Some (delivered :: chunks);
          t.retained_bytes <- nb;
          Registry.Counter.add t.c_retention_bytes (String.length delivered)
        end
      | None ->
        (* after an overflow, keep the input position current so a
           resurrecting checkpoint lands at the right replay base *)
        if t.retention_overflowed then
          t.checkpoint_base <- t.checkpoint_base + String.length delivered);
      (match t.state with
      | Established | Fin_wait_1 | Fin_wait_2 ->
        if t.recv_paused then Buffer.add_string t.recv_pending delivered
        else t.on_data delivered
      | Syn_received | Syn_sent | Close_wait | Closing | Last_ack
      | Time_wait | Closed ->
        ())
    end;
    process_fin_if_reached t;
    (* Out-of-order segments and gap fills are acknowledged immediately so
       the sender can fast-retransmit; in-order data uses delayed ACKs. *)
    if t.state <> Closed then
      schedule_ack t ~immediate:(not in_order || String.length delivered = 0)
  end

let note_fin t (seg : Seg.t) =
  if seg.flags.fin then begin
    let fpos = Seq32.add seg.seq (String.length seg.payload
                                  + if seg.flags.syn then 1 else 0) in
    (match t.rcv_fin with
    | None -> t.rcv_fin <- Some fpos
    | Some _ -> ());
    process_fin_if_reached t
  end

let update_send_window t (seg : Seg.t) =
  if
    Seq32.lt t.snd_wl1 seg.seq
    || (Seq32.equal t.snd_wl1 seg.seq && Seq32.le t.snd_wl2 seg.ack)
  then begin
    let scaled =
      if seg.flags.syn then seg.window else seg.window lsl t.snd_wscale
    in
    let opened = scaled > 0 && t.snd_wnd = 0 in
    t.snd_wnd <- scaled;
    t.snd_wl1 <- seg.seq;
    t.snd_wl2 <- seg.ack;
    if opened then begin
      stop_persist t;
      t.persist_shift <- 0
    end
  end

let congestion_on_ack t acked =
  if t.config.congestion_control && acked > 0 then begin
    let mss = effective_mss t in
    if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd + mss
    else t.cwnd <- t.cwnd + max 1 (mss * mss / t.cwnd)
  end

let fast_retransmit t =
  if t.config.congestion_control then begin
    let mss = effective_mss t in
    t.ssthresh <- max (flight_size t / 2) (2 * mss);
    t.cwnd <- t.ssthresh
  end;
  retransmit_one t;
  restart_rtx t

let record_sack t (seg : Seg.t) =
  if t.sack_on then
    match Seg.sack_option seg with
    | Some blocks ->
      List.iter
        (fun (lo, hi) ->
          (* ignore blocks outside the live window *)
          if Seq32.ge lo t.snd_una && Seq32.le hi t.snd_max then
            Rangeset.add t.sack_board ~lo ~hi)
        blocks
    | None -> ()

let process_ack t (seg : Seg.t) =
  record_sack t seg;
  if Seq32.gt seg.ack t.snd_max then
    (* acks something we never sent: resynchronize the peer *)
    send_ack_now t
  else if Seq32.gt seg.ack t.snd_una then begin
    let acked = Seq32.diff seg.ack t.snd_una in
    t.snd_una <- seg.ack;
    Rangeset.clear_below t.sack_board t.snd_una;
    (* a cumulative ack can overtake a rewound snd_nxt; restore the
       invariant snd_una <= snd_nxt before any callback (on_drain) can
       re-enter the output engine *)
    t.snd_nxt <- Seq32.max t.snd_nxt t.snd_una;
    t.dupacks <- 0;
    t.retry_count <- 0;
    Rto.reset_backoff t.rto;
    (* RTT sample (Karn: probe cleared on any retransmission) *)
    (match t.rtt_probe with
    | Some (pseq, sent_at) when Seq32.ge seg.ack pseq ->
      Rto.sample t.rto (t.clock.now () - sent_at);
      t.rtt_probe <- None
    | Some _ | None -> ());
    (* release acked payload bytes from the send buffer *)
    let data_ack =
      (* clip the ack to the payload region: SYN and FIN occupy sequence
         space but no buffer space *)
      let lo = Seq32.succ t.iss in
      if Seq32.lt seg.ack lo then 0
      else
        let o = offset_of_seq t seg.ack in
        min o (Bytebuf.end_offset t.sndbuf)
    in
    if data_ack > Bytebuf.start_offset t.sndbuf then begin
      let released = data_ack - Bytebuf.start_offset t.sndbuf in
      t.n_bytes_acked <- t.n_bytes_acked + released;
      Bytebuf.release_to t.sndbuf ~pos:data_ack;
      if t.send_full && Bytebuf.free t.sndbuf > 0 then begin
        t.send_full <- false;
        t.on_drain ()
      end
    end;
    congestion_on_ack t acked;
    update_send_window t seg;
    t.snd_nxt <- Seq32.max t.snd_nxt t.snd_una;
    if Seq32.equal t.snd_una t.snd_max then
      t.rtx_timer <- cancel_timer t t.rtx_timer
    else restart_rtx t;
    (* our FIN acknowledged? *)
    if t.fin_sent && Seq32.ge t.snd_una (Seq32.succ (fin_seq t)) then begin
      match t.state with
      | Fin_wait_1 -> t.state <- Fin_wait_2
      | Closing -> enter_time_wait t
      | Last_ack ->
        let cb = t.on_close in
        delete t;
        cb ()
      | Established | Syn_sent | Syn_received | Fin_wait_2 | Close_wait
      | Time_wait | Closed ->
        ()
    end;
    try_output t
  end
  else begin
    (* old or duplicate ack *)
    update_send_window t seg;
    if
      t.config.fast_retransmit
      && Seq32.equal seg.ack t.snd_una
      && String.length seg.payload = 0
      && (not seg.flags.syn) && (not seg.flags.fin)
      && Seq32.lt t.snd_una t.snd_max
    then begin
      t.dupacks <- t.dupacks + 1;
      if t.dupacks = 3 then fast_retransmit t
    end;
    try_output t
  end

let handle_reset t =
  let cb = t.on_reset in
  delete t;
  cb ()

let segment_in_syn_sent t (seg : Seg.t) =
  if seg.flags.ack && not (Seq32.between ~low:(Seq32.succ t.iss)
                             ~high:(Seq32.succ t.snd_nxt) seg.ack)
  then begin
    if not seg.flags.rst then send_rst t ~seq:seg.ack
  end
  else if seg.flags.rst then (if seg.flags.ack then handle_reset t)
  else if seg.flags.syn then begin
    accept_syn t seg;
    if seg.flags.ack then begin
      t.snd_una <- seg.ack;
      t.rtx_timer <- cancel_timer t t.rtx_timer;
      (match t.rtt_probe with
      | Some (pseq, sent_at) when Seq32.ge seg.ack pseq ->
        Rto.sample t.rto (t.clock.now () - sent_at);
        t.rtt_probe <- None
      | Some _ | None -> ());
      t.state <- Established;
      arm_keepalive t;
      send_ack_now t;
      t.on_established ();
      deliver_payload t seg;
      note_fin t seg;
      try_output t
    end
    else begin
      (* simultaneous open *)
      t.state <- Syn_received;
      emit t
        (Seg.make
           ~flags:{ Seg.no_flags with syn = true; ack = true }
           ~ack:t.rcv_nxt
           ~window:(min 0xFFFF (rcv_wnd t))
           ~options:(syn_options t) ~src_port:(snd t.local)
           ~dst_port:(snd t.remote) ~seq:t.iss ());
      arm_rtx t
    end
  end

(* ------------------------------------------------------------------ *)
(* Hot state transfer (snapshot / restore)                            *)

(* A self-contained, plain-data image of a connection: every field is an
   int, string, bool, option or list thereof, so structural equality and
   a flat binary codec are both valid on it.  Sequence numbers travel as
   [Seq32.t] (an int underneath). *)
type snapshot = {
  sn_state : state;
  sn_local : Ipaddr.t * int;
  sn_remote : Ipaddr.t * int;
  sn_iss : Seq32.t;
  sn_sndbuf_start : int;
  sn_sndbuf_data : string;
  sn_snd_una : Seq32.t;
  sn_snd_max : Seq32.t;
  sn_snd_wnd : int;
  sn_snd_wl1 : Seq32.t;
  sn_snd_wl2 : Seq32.t;
  sn_peer_mss : int;
  sn_snd_wscale : int;
  sn_rcv_wscale : int;
  sn_ts_on : bool;
  sn_ts_recent : int;
  sn_sack_on : bool;
  sn_sack_ranges : (Seq32.t * Seq32.t) list;
  sn_fin_queued : bool;
  sn_fin_sent : bool;
  sn_irs : Seq32.t;
  sn_rcv_nxt : Seq32.t;
  sn_reasm : (Seq32.t * string) list;
  sn_rcv_fin : Seq32.t option;
  sn_eof_signalled : bool;
  sn_srtt : float option;
  sn_rttvar : float;
  sn_rto_base : int;
  sn_rto_shift : int;
  sn_cwnd : int;
  sn_ssthresh : int;
  sn_retained_input : string list;
  sn_replay_base : int;
}

(* Application checkpoint: the service declares it no longer needs the
   input prefix to rebuild its per-connection state, so the retained
   history is truncated at the current delivery boundary.  After a
   retention-budget overflow the same declaration covers the lost
   prefix, so retention (and with it transferability) is resurrected at
   the current input position.  A no-op on connections that never
   retained. *)
let checkpoint t =
  match t.retained with
  | Some _ ->
    let dropped = t.retained_bytes in
    if dropped > 0 then begin
      t.checkpoint_base <- t.checkpoint_base + dropped;
      t.retained <- Some [];
      t.retained_bytes <- 0;
      Registry.Counter.add t.c_retention_truncated dropped
    end;
    Registry.Counter.incr t.c_checkpoints
  | None ->
    if t.retention_overflowed then begin
      t.retention_overflowed <- false;
      t.retained <- Some [];
      t.retained_bytes <- 0;
      Registry.Counter.incr t.c_checkpoints
    end

(* Periodic checkpoints on [config.checkpoint_interval].  Timer-driven
   truncation is only safe for applications whose state rebuilds from
   any delivery boundary; stateful ones leave the interval unset and
   call {!checkpoint} at their own safe points. *)
let rec arm_checkpoint_timer t =
  match t.config.checkpoint_interval with
  | None -> ()
  | Some interval ->
    t.checkpoint_timer <- cancel_timer t t.checkpoint_timer;
    t.checkpoint_timer <-
      Some
        (t.clock.schedule interval (fun () ->
             t.checkpoint_timer <- None;
             if
               t.state <> Closed
               && (t.retained <> None || t.retention_overflowed)
             then begin
               checkpoint t;
               arm_checkpoint_timer t
             end))

let enable_input_retention t =
  (* never after an overflow: the replay prefix is gone for good, and a
     partial history would silently corrupt a restored replica (only an
     application {!checkpoint} may resurrect retention — it declares the
     prefix unnecessary) *)
  if t.retained = None && not t.retention_overflowed then begin
    t.retained <- Some [];
    arm_checkpoint_timer t
  end

let input_retention_enabled t = t.retained <> None
let input_retention_overflowed t = t.retention_overflowed
let replay_base t = t.checkpoint_base
let retained_input_bytes t = t.retained_bytes

let snapshot t =
  let rto = Rto.export t.rto in
  {
    sn_state = t.state;
    sn_local = t.local;
    sn_remote = t.remote;
    sn_iss = t.iss;
    sn_sndbuf_start = Bytebuf.start_offset t.sndbuf;
    sn_sndbuf_data =
      Bytebuf.read t.sndbuf
        ~pos:(Bytebuf.start_offset t.sndbuf)
        ~len:(Bytebuf.length t.sndbuf);
    sn_snd_una = t.snd_una;
    sn_snd_max = t.snd_max;
    sn_snd_wnd = t.snd_wnd;
    sn_snd_wl1 = t.snd_wl1;
    sn_snd_wl2 = t.snd_wl2;
    sn_peer_mss = t.peer_mss;
    sn_snd_wscale = t.snd_wscale;
    sn_rcv_wscale = t.rcv_wscale;
    sn_ts_on = t.ts_on;
    sn_ts_recent = t.ts_recent;
    sn_sack_on = t.sack_on;
    sn_sack_ranges = Rangeset.ranges t.sack_board;
    sn_fin_queued = t.fin_queued;
    sn_fin_sent = t.fin_sent;
    sn_irs = t.irs;
    sn_rcv_nxt = t.rcv_nxt;
    sn_reasm = Interval_buf.islands t.reasm;
    sn_rcv_fin = t.rcv_fin;
    sn_eof_signalled = t.eof_signalled;
    sn_srtt = rto.Rto.s_srtt;
    sn_rttvar = rto.Rto.s_rttvar;
    sn_rto_base = rto.Rto.s_base;
    sn_rto_shift = rto.Rto.s_shift;
    sn_cwnd = t.cwnd;
    sn_ssthresh = t.ssthresh;
    sn_retained_input =
      (match t.retained with Some chunks -> List.rev chunks | None -> []);
    sn_replay_base = t.checkpoint_base;
  }

(* Translate the send-side sequence space by [n] (receive side and
   [snd_wl1], which carries a peer sequence number, are untouched).  Used
   to move a snapshot taken in the surviving primary's space into the
   wire (secondary) space before shipping: wire seq = primary seq − Δ. *)
let shift_snapshot s n =
  let sh x = Seq32.add x n in
  {
    s with
    sn_iss = sh s.sn_iss;
    sn_snd_una = sh s.sn_snd_una;
    sn_snd_max = sh s.sn_snd_max;
    sn_snd_wl2 = sh s.sn_snd_wl2;
    sn_sack_ranges =
      List.map (fun (lo, hi) -> (sh lo, sh hi)) s.sn_sack_ranges;
  }

let restore clock ?obs ~config actions (s : snapshot) =
  let t =
    make clock ?obs ~config ~local:s.sn_local ~remote:s.sn_remote
      ~iss:s.sn_iss actions s.sn_state
  in
  t.sndbuf <-
    Bytebuf.of_string ~capacity:config.Tcp_config.send_buf_size
      ~start_offset:s.sn_sndbuf_start s.sn_sndbuf_data;
  t.snd_una <- s.sn_snd_una;
  (* resume transmitting at the frontier; a hole below it is repaired by
     the ordinary go-back-N RTO / fast-retransmit machinery *)
  t.snd_nxt <- s.sn_snd_max;
  t.snd_max <- s.sn_snd_max;
  t.snd_wnd <- s.sn_snd_wnd;
  t.snd_wl1 <- s.sn_snd_wl1;
  t.snd_wl2 <- s.sn_snd_wl2;
  t.peer_mss <- s.sn_peer_mss;
  t.snd_wscale <- s.sn_snd_wscale;
  t.rcv_wscale <- s.sn_rcv_wscale;
  t.ts_on <- s.sn_ts_on;
  t.ts_recent <- s.sn_ts_recent;
  t.sack_on <- s.sn_sack_on;
  List.iter (fun (lo, hi) -> Rangeset.add t.sack_board ~lo ~hi)
    s.sn_sack_ranges;
  t.fin_queued <- s.sn_fin_queued;
  t.fin_sent <- s.sn_fin_sent;
  t.irs <- s.sn_irs;
  t.rcv_nxt <- s.sn_rcv_nxt;
  t.reasm <- Interval_buf.create ~base:s.sn_rcv_nxt;
  List.iter (fun (seq, data) -> Interval_buf.insert t.reasm ~seq data)
    s.sn_reasm;
  t.rcv_fin <- s.sn_rcv_fin;
  t.eof_signalled <- s.sn_eof_signalled;
  Rto.import t.rto
    {
      Rto.s_srtt = s.sn_srtt;
      s_rttvar = s.sn_rttvar;
      s_base = s.sn_rto_base;
      s_shift = s.sn_rto_shift;
    };
  t.cwnd <- s.sn_cwnd;
  t.ssthresh <- s.sn_ssthresh;
  t.retained <- Some (List.rev s.sn_retained_input);
  t.retained_bytes <-
    List.fold_left
      (fun acc c -> acc + String.length c)
      0 s.sn_retained_input;
  t.checkpoint_base <- s.sn_replay_base;
  (* the application will replay the retained input and regenerate its
     output stream from byte 0: swallow the prefix the snapshot already
     accounts for *)
  t.resync_skip <- s.sn_sndbuf_start + String.length s.sn_sndbuf_data;
  t

(* Bring a freshly restored connection to life: replay the application's
   view of history (established, retained input, EOF) so the service
   layer rebuilds its per-connection state, then re-arm timers.  Output
   regenerated during the replay is swallowed by [resync_skip] up to the
   snapshot point, after which genuinely new bytes flow normally. *)
let resume_restored t =
  t.replaying <- true;
  t.on_established ();
  (match t.retained with
  | Some chunks -> List.iter t.on_data (List.rev chunks)
  | None -> ());
  if t.eof_signalled then t.on_eof ();
  t.replaying <- false;
  (* Regeneration is over: an application that derives its output from
     the replayed input has re-sent its history synchronously inside the
     callbacks above (swallowed sends never exert backpressure, so a
     drain-pumped writer runs to the end of its history without
     yielding).  An application that cannot regenerate — a relay whose
     output originates on another connection — sends nothing during
     replay.  Either way the snapshot's send buffer already carries
     every unacknowledged byte, so whatever skip budget remains would
     only swallow genuinely new data: cancel it. *)
  t.resync_skip <- 0;
  if t.state = Established then arm_keepalive t;
  (* a restored TIME_WAIT connection must still answer retransmitted
     FINs, and still eventually evaporate: restart the 2MSL timer *)
  if t.state = Time_wait then enter_time_wait t;
  if Seq32.lt t.snd_una t.snd_max then arm_rtx t;
  (* restored connections resume periodic checkpointing on this host *)
  arm_checkpoint_timer t;
  try_output t

let snd_max t = t.snd_max
let rcv_wscale t = t.rcv_wscale
let fin_queued t = t.fin_queued
let fin_sent t = t.fin_sent
let rcv_fin t = t.rcv_fin
let eof_signalled t = t.eof_signalled
let replaying t = t.replaying
let receive_window t = rcv_wnd t

let segment_arrives t (seg : Seg.t) =
  if t.state = Closed then ()
  else begin
    t.n_segments_in <- t.n_segments_in + 1;
    t.last_activity <- t.clock.now ();
    t.ka_probes_sent <- 0;
    match t.state with
    | Syn_sent -> segment_in_syn_sent t seg
    | Closed -> ()
    | _ ->
      if not (acceptable_segment t seg) then begin
        (* old duplicate or out-of-window: re-ack unless it is an RST.
           In TIME_WAIT a retransmitted FIN also restarts the 2MSL
           timer. *)
        if not seg.flags.rst then begin
          send_ack_now t;
          if t.state = Time_wait && seg.flags.fin then enter_time_wait t
        end
      end
      else if seg.flags.rst then handle_reset t
      else if seg.flags.syn && Seq32.gt seg.seq t.rcv_nxt then begin
        (* new SYN inside the window: fatal *)
        send_rst t ~seq:t.snd_nxt;
        handle_reset t
      end
      else if not seg.flags.ack then ()
      else begin
        (* RFC 7323: track the peer's timestamp and measure RTT from the
           echoed value of every acceptable ACK *)
        if t.ts_on then begin
          (match Seg.timestamps_option seg with
          | Some (tsval, tsecr) ->
            if Seq32.le seg.seq t.rcv_nxt then t.ts_recent <- tsval;
            if seg.flags.ack && tsecr > 0 then begin
              let rtt_ms = (now_ms t land 0xFFFFFFFF) - tsecr in
              if rtt_ms >= 0 && rtt_ms < 60_000
                 && Seq32.gt seg.ack t.snd_una then
                Rto.sample t.rto (rtt_ms * 1_000_000)
            end
          | None -> ())
        end;
        (match t.state with
        | Syn_received ->
          if
            Seq32.between ~low:t.snd_una ~high:(Seq32.succ t.snd_nxt)
              seg.ack
          then begin
            t.state <- Established;
            arm_keepalive t;
            t.retry_count <- 0;
            t.rtx_timer <- cancel_timer t t.rtx_timer;
            (match t.rtt_probe with
            | Some (pseq, sent_at) when Seq32.ge seg.ack pseq ->
              Rto.sample t.rto (t.clock.now () - sent_at);
              t.rtt_probe <- None
            | Some _ | None -> ());
            t.snd_wnd <- seg.window;
            t.snd_wl1 <- seg.seq;
            t.snd_wl2 <- seg.ack;
            t.on_established ()
          end
          else begin
            send_rst t ~seq:seg.ack;
            handle_reset t
          end
        | _ -> ());
        if t.state <> Closed then begin
          process_ack t seg;
          deliver_payload t seg;
          note_fin t seg
        end
      end
  end
