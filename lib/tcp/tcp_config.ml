module Time = Tcpfo_sim.Time

type t = {
  mss : int;
  send_buf_size : int;
  recv_buf_size : int;
  rto_init : Time.t;
  rto_min : Time.t;
  rto_max : Time.t;
  delayed_ack : bool;
  delack_delay : Time.t;
  nagle : bool;
  msl : Time.t;
  max_syn_retries : int;
  max_data_retries : int;
  fast_retransmit : bool;
  congestion_control : bool;
  iss_override : int option;
  window_scale : int;
  timestamps : bool;
  sack : bool;
  keepalive : Time.t option;
  keepalive_probes : int;
  retention_budget : int;
  checkpoint_interval : Time.t option;
      (* when set, every retaining connection checkpoints itself on this
         period ({!Tcb.checkpoint}): retained input is truncated at the
         boundary so long-lived connections stay transferable instead of
         overflowing [retention_budget].  Only safe for applications
         whose per-connection state rebuilds from any delivery boundary;
         stateful apps should call {!Tcb.checkpoint} explicitly at their
         own safe points instead. *)
}

let default =
  {
    mss = 1460;
    send_buf_size = 65536;
    recv_buf_size = 65536;
    rto_init = Time.sec 1.0;
    rto_min = Time.ms 200;
    rto_max = Time.sec 64.0;
    delayed_ack = true;
    delack_delay = Time.ms 100;
    nagle = false;
    msl = Time.sec 5.0;
    max_syn_retries = 5;
    max_data_retries = 10;
    fast_retransmit = true;
    congestion_control = true;
    iss_override = None;
    window_scale = 0;
    timestamps = false;
    sack = false;
    keepalive = None;
    keepalive_probes = 3;
    retention_budget = 1 lsl 20;
    checkpoint_interval = None;
  }
