(** TCP stack instance for one host: connection demultiplexing, listeners,
    active opens, RST generation for unmatched segments.

    The [extra-local] predicate is the single concession to the failover
    system: the secondary server's bridge registers the primary's address
    as acceptable so that connections snooped in promiscuous mode are keyed
    under the service address they will keep after IP takeover (paper §5 —
    this is what makes "disable the translation and take over the IP
    address" sufficient for the TCP layer to continue undisturbed). *)

type t

val create :
  Tcpfo_sim.Clock.t ->
  ip:Tcpfo_ip.Ip_layer.t ->
  config:Tcp_config.t ->
  rng:Tcpfo_util.Rng.t ->
  t
(** Installs itself as the IP layer's TCP protocol handler.  Derives its
    observability scope from the IP layer's ([<host>.tcp]): counter
    [tcp.rst_sent], gauge [tcp.connections], and — via the connections it
    creates — [tcp.retransmits], [tcp.rto_backoffs] and the [tcp.rtt_us]
    histogram. *)

val config : t -> Tcp_config.t
val ip : t -> Tcpfo_ip.Ip_layer.t

val listen :
  t -> port:int -> on_accept:(Tcb.t -> unit) -> unit
(** Accept connections to [port] on any local (or extra-local) address.
    [on_accept] fires as soon as the connection is created (SYN received);
    use {!Tcb.set_on_established} for handshake completion. *)

val unlisten : t -> port:int -> unit

val connect :
  t ->
  ?local:Tcpfo_packet.Ipaddr.t ->
  ?local_port:int ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  unit ->
  Tcb.t
(** Active open.  [local] defaults to the first address of the IP layer;
    [local_port] to a fresh ephemeral port. *)

val set_extra_local : t -> (Tcpfo_packet.Ipaddr.t -> bool) -> unit
(** Extend the set of addresses considered local for listening sockets and
    as permissible [~local] in {!connect}. *)

val connection_count : t -> int

val find :
  t ->
  local:Tcpfo_packet.Ipaddr.t * int ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  Tcb.t option

val fresh_port : t -> int
(** Allocate an ephemeral port. *)

val adopt :
  t ->
  local:Tcpfo_packet.Ipaddr.t * int ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  make:(Tcb.actions -> Tcb.t) ->
  (Tcb.t, string) result
(** Register a connection built outside the ordinary open paths — a
    restored TCB arriving via hot state transfer.  [make] receives the
    demux-table actions (emit / on_delete) exactly as {!connect} and
    listeners wire them.  Errors (without calling [make]) if the 4-tuple
    is already present. *)

val connections : t -> Tcb.t list
(** All live connections in a deterministic order (sorted by 4-tuple),
    so iteration is reproducible across runs and [--jobs] settings. *)

val clock : t -> Tcpfo_sim.Clock.t

val obs : t -> Tcpfo_obs.Obs.t
(** The stack's [tcp]-narrowed scope.  Demux instrumentation lives here
    too: counters [tcp.demux_hits] / [tcp.demux_misses] (segments that
    matched / failed to match an established connection). *)

(** Internals of the packed demux key, exposed for regression tests.

    Segments demux through a single 62-bit immediate int —
    [lid:15|lport:16|rid:15|rport:16] with addresses interned to
    per-stack 15-bit ids — hashed by a dedicated integer mix, so the
    per-segment lookup allocates nothing and never enters caml
    structural hashing. *)
module For_testing : sig
  val pack : lid:int -> lport:int -> rid:int -> rport:int -> int
  val unpack : int -> int * int * int * int
  (** Inverse of {!pack}: [(lid, lport, rid, rport)]. *)

  val hash : int -> int

  val key_of :
    t ->
    local:Tcpfo_packet.Ipaddr.t * int ->
    remote:Tcpfo_packet.Ipaddr.t * int ->
    int
  (** The key a segment with these endpoints demuxes under (interns the
      addresses as a side effect, exactly like the hot path). *)

  val intern : t -> Tcpfo_packet.Ipaddr.t -> int
end
