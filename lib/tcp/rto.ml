module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

type t = {
  rto_min : int;
  rto_max : int;
  mutable srtt : float option; (* ns *)
  mutable rttvar : float;
  mutable base : int; (* ns, before backoff *)
  mutable shift : int; (* backoff exponent *)
  backoffs : Registry.counter;
  rtt_us : Registry.histogram;
}

let create ?obs ~init ~min ~max () =
  let obs = match obs with Some o -> o | None -> Obs.silent () in
  { rto_min = min; rto_max = max; srtt = None; rttvar = 0.0; base = init;
    shift = 0; backoffs = Obs.counter obs "rto_backoffs";
    rtt_us = Obs.histogram obs "rtt_us" }

let clamp t v = Stdlib.max t.rto_min (Stdlib.min t.rto_max v)

let sample t rtt =
  Registry.Histogram.observe t.rtt_us (float_of_int rtt /. 1_000.0);
  let r = float_of_int rtt in
  (match t.srtt with
  | None ->
    t.srtt <- Some r;
    t.rttvar <- r /. 2.0
  | Some srtt ->
    let alpha = 0.125 and beta = 0.25 in
    t.rttvar <- ((1.0 -. beta) *. t.rttvar) +. (beta *. Float.abs (srtt -. r));
    t.srtt <- Some (((1.0 -. alpha) *. srtt) +. (alpha *. r)));
  match t.srtt with
  | Some srtt ->
    t.base <- clamp t (int_of_float (srtt +. Stdlib.max 1.0 (4.0 *. t.rttvar)))
  | None -> ()

let current t =
  let v = t.base lsl t.shift in
  clamp t v

let backoff t =
  if current t < t.rto_max then begin
    Registry.Counter.incr t.backoffs;
    t.shift <- t.shift + 1
  end

let reset_backoff t = t.shift <- 0
let srtt t = Option.map int_of_float t.srtt

type snapshot = {
  s_srtt : float option;
  s_rttvar : float;
  s_base : int;
  s_shift : int;
}

let export t =
  { s_srtt = t.srtt; s_rttvar = t.rttvar; s_base = t.base; s_shift = t.shift }

let import t s =
  t.srtt <- s.s_srtt;
  t.rttvar <- s.s_rttvar;
  t.base <- clamp t s.s_base;
  t.shift <- s.s_shift
