(** Tunables of the TCP stack.

    Defaults mirror the paper's testbed era (FreeBSD 4.4-ish): 1460-byte
    MSS, 64 KB send and receive buffers (the knee in Figure 3 comes from
    the 64 KB send buffer), delayed ACKs, Reno congestion control. *)

type t = {
  mss : int;  (** MSS we advertise in our SYN *)
  send_buf_size : int;
  recv_buf_size : int;
  rto_init : Tcpfo_sim.Time.t;
  rto_min : Tcpfo_sim.Time.t;
  rto_max : Tcpfo_sim.Time.t;
  delayed_ack : bool;
  delack_delay : Tcpfo_sim.Time.t;
  nagle : bool;
  msl : Tcpfo_sim.Time.t;  (** TIME_WAIT lasts 2×MSL *)
  max_syn_retries : int;
  max_data_retries : int;
  fast_retransmit : bool;
  congestion_control : bool;  (** Reno slow-start/avoidance when true *)
  iss_override : int option;
      (** force every new connection's initial send sequence number
          (normally random).  For tests that must cross the 2^32
          sequence-space boundary mid-transfer. *)
  window_scale : int;
      (** RFC 7323 receive-window shift to request (0 = option off).
          Effective only when both ends offer the option. *)
  timestamps : bool;
      (** RFC 7323 timestamps: every segment carries TSval/TSecr and RTT
          is measured per ACK instead of one probe at a time. *)
  sack : bool;
      (** RFC 2018 selective acknowledgments: the receiver reports
          out-of-order islands and the sender retransmits only the
          holes. *)
  keepalive : Tcpfo_sim.Time.t option;
      (** probe an idle established connection after this much silence;
          after {!field-keepalive_probes} unanswered probes the connection
          is reset (None = keepalives off, the default) *)
  keepalive_probes : int;
  retention_budget : int;
      (** Byte cap on input retained for hot state transfer.  A
          connection whose in-order deliveries outgrow the budget drops
          its retained history and becomes non-transferable (it is
          isolated at the next reintegration instead of re-replicated,
          unless a later {!Tcb.checkpoint} resurrects retention); the
          overflow is surfaced through the [statex.retention_*]
          counters.  Default 1 MiB. *)
  checkpoint_interval : Tcpfo_sim.Time.t option;
      (** Periodic {!Tcb.checkpoint} driver: every retaining connection
          truncates its retained input on this period, so long-lived
          connections stay transferable (and snapshots stay small)
          instead of overflowing {!field-retention_budget}.  Only safe
          for applications whose per-connection state rebuilds from any
          delivery boundary; stateful applications leave this [None]
          (the default) and call {!Tcb.checkpoint} at their own safe
          points. *)
}

val default : t
