(** Retransmission-timeout estimation (RFC 6298: Jacobson/Karels SRTT and
    RTTVAR, Karn's rule enforced by the caller, exponential backoff). *)

type t

val create :
  ?obs:Tcpfo_obs.Obs.t ->
  init:Tcpfo_sim.Time.t ->
  min:Tcpfo_sim.Time.t ->
  max:Tcpfo_sim.Time.t ->
  unit ->
  t
(** [obs] (normally the stack's [tcp] scope) receives the shared counter
    [rto_backoffs] and histogram [rtt_us] — every RTT measurement, in
    microseconds. *)

val sample : t -> Tcpfo_sim.Time.t -> unit
(** Feed a round-trip measurement from an un-retransmitted segment. *)

val current : t -> Tcpfo_sim.Time.t
(** RTO to arm now, including any backoff. *)

val backoff : t -> unit
(** Double the timeout after a retransmission (capped at [max]). *)

val reset_backoff : t -> unit
(** Called when new data is acknowledged. *)

val srtt : t -> Tcpfo_sim.Time.t option
(** Smoothed RTT, if at least one sample has been taken. *)

(** Portable estimator state for hot state transfer: the smoothed RTT,
    its variance, the pre-backoff timeout and the backoff exponent. *)
type snapshot = {
  s_srtt : float option;
  s_rttvar : float;
  s_base : int;
  s_shift : int;
}

val export : t -> snapshot

val import : t -> snapshot -> unit
(** Overwrite the estimator state with a previously exported snapshot
    (bounds re-clamped against this instance's min/max). *)
