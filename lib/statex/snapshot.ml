module Seq32 = Tcpfo_util.Seq32
module Ipaddr = Tcpfo_packet.Ipaddr
module Tcb = Tcpfo_tcp.Tcb

type role = [ `Server | `Client ]

type conn = {
  tcb : Tcb.snapshot;
  role : role;
  delta : int;
  next_wire_seq : Seq32.t;
  held_segments : int;
  solo : bool;
}

let role_tag : role -> int = function `Server -> 0 | `Client -> 1

let role_of_tag = function
  | 0 -> `Server
  | 1 -> `Client
  | n -> raise (Codec.Corrupt (Printf.sprintf "invalid role tag %d" n))

(* --- primitive field helpers ------------------------------------- *)

let w_seq b s = Codec.W.u32 b (Seq32.to_int s)
let r_seq r = Seq32.of_int (Codec.R.u32 r)

let w_addr b a = Codec.W.u32 b (Ipaddr.to_int a)
let r_addr r = Ipaddr.of_int (Codec.R.u32 r)

let w_endpoint b (a, p) =
  w_addr b a;
  Codec.W.u16 b p

let r_endpoint r =
  let a = r_addr r in
  let p = Codec.R.u16 r in
  (a, p)

let state_tag : Tcb.state -> int = function
  | Tcb.Syn_sent -> 0
  | Syn_received -> 1
  | Established -> 2
  | Fin_wait_1 -> 3
  | Fin_wait_2 -> 4
  | Close_wait -> 5
  | Closing -> 6
  | Last_ack -> 7
  | Time_wait -> 8
  | Closed -> 9

let state_of_tag = function
  | 0 -> Tcb.Syn_sent
  | 1 -> Tcb.Syn_received
  | 2 -> Tcb.Established
  | 3 -> Tcb.Fin_wait_1
  | 4 -> Tcb.Fin_wait_2
  | 5 -> Tcb.Close_wait
  | 6 -> Tcb.Closing
  | 7 -> Tcb.Last_ack
  | 8 -> Tcb.Time_wait
  | 9 -> Tcb.Closed
  | n -> raise (Codec.Corrupt (Printf.sprintf "invalid state tag %d" n))

(* --- TCB image ----------------------------------------------------

   Two wire forms since envelope v3:

   - [Full] (tag 0): the legacy v2 layout byte-for-byte — the whole
     retained input history, replay base implicitly 0.  A v2 envelope
     carries exactly this layout with no form tag.
   - [Delta] (tag 1): the same layout followed by a u64 replay base.
     The retained-input list holds only post-checkpoint deliveries and
     the send buffer only client-unACKed bytes, so a checkpointing
     long-lived connection ships kilobytes instead of its lifetime
     history.

   [encode] picks the form from [sn_replay_base]; decode accepts both
   plus legacy v2, so full snapshots remain decodable forever. *)

let form_full = 0
let form_delta = 1

let write_tcb b (s : Tcb.snapshot) =
  Codec.W.u8 b (state_tag s.sn_state);
  w_endpoint b s.sn_local;
  w_endpoint b s.sn_remote;
  w_seq b s.sn_iss;
  Codec.W.u64 b (Int64.of_int s.sn_sndbuf_start);
  Codec.W.str b s.sn_sndbuf_data;
  w_seq b s.sn_snd_una;
  w_seq b s.sn_snd_max;
  Codec.W.u32 b s.sn_snd_wnd;
  w_seq b s.sn_snd_wl1;
  w_seq b s.sn_snd_wl2;
  Codec.W.u16 b s.sn_peer_mss;
  Codec.W.u8 b s.sn_snd_wscale;
  Codec.W.u8 b s.sn_rcv_wscale;
  Codec.W.bool b s.sn_ts_on;
  Codec.W.u32 b s.sn_ts_recent;
  Codec.W.bool b s.sn_sack_on;
  Codec.W.list b
    (fun b (lo, hi) ->
      w_seq b lo;
      w_seq b hi)
    s.sn_sack_ranges;
  Codec.W.bool b s.sn_fin_queued;
  Codec.W.bool b s.sn_fin_sent;
  w_seq b s.sn_irs;
  w_seq b s.sn_rcv_nxt;
  Codec.W.list b
    (fun b (seq, data) ->
      w_seq b seq;
      Codec.W.str b data)
    s.sn_reasm;
  Codec.W.option b w_seq s.sn_rcv_fin;
  Codec.W.bool b s.sn_eof_signalled;
  Codec.W.option b Codec.W.float s.sn_srtt;
  Codec.W.float b s.sn_rttvar;
  Codec.W.u64 b (Int64.of_int s.sn_rto_base);
  Codec.W.u8 b s.sn_rto_shift;
  Codec.W.u64 b (Int64.of_int s.sn_cwnd);
  Codec.W.u64 b (Int64.of_int s.sn_ssthresh);
  Codec.W.list b Codec.W.str s.sn_retained_input

let read_tcb r ~replay_base : Tcb.snapshot =
  let sn_state = state_of_tag (Codec.R.u8 r) in
  let sn_local = r_endpoint r in
  let sn_remote = r_endpoint r in
  let sn_iss = r_seq r in
  let sn_sndbuf_start = Int64.to_int (Codec.R.u64 r) in
  let sn_sndbuf_data = Codec.R.str r in
  let sn_snd_una = r_seq r in
  let sn_snd_max = r_seq r in
  let sn_snd_wnd = Codec.R.u32 r in
  let sn_snd_wl1 = r_seq r in
  let sn_snd_wl2 = r_seq r in
  let sn_peer_mss = Codec.R.u16 r in
  let sn_snd_wscale = Codec.R.u8 r in
  let sn_rcv_wscale = Codec.R.u8 r in
  let sn_ts_on = Codec.R.bool r in
  let sn_ts_recent = Codec.R.u32 r in
  let sn_sack_on = Codec.R.bool r in
  let sn_sack_ranges =
    Codec.R.list r (fun r ->
        let lo = r_seq r in
        let hi = r_seq r in
        (lo, hi))
  in
  let sn_fin_queued = Codec.R.bool r in
  let sn_fin_sent = Codec.R.bool r in
  let sn_irs = r_seq r in
  let sn_rcv_nxt = r_seq r in
  let sn_reasm =
    Codec.R.list r (fun r ->
        let seq = r_seq r in
        let data = Codec.R.str r in
        (seq, data))
  in
  let sn_rcv_fin = Codec.R.option r r_seq in
  let sn_eof_signalled = Codec.R.bool r in
  let sn_srtt = Codec.R.option r Codec.R.float in
  let sn_rttvar = Codec.R.float r in
  let sn_rto_base = Int64.to_int (Codec.R.u64 r) in
  let sn_rto_shift = Codec.R.u8 r in
  let sn_cwnd = Int64.to_int (Codec.R.u64 r) in
  let sn_ssthresh = Int64.to_int (Codec.R.u64 r) in
  let sn_retained_input = Codec.R.list r Codec.R.str in
  {
    sn_state;
    sn_local;
    sn_remote;
    sn_iss;
    sn_sndbuf_start;
    sn_sndbuf_data;
    sn_snd_una;
    sn_snd_max;
    sn_snd_wnd;
    sn_snd_wl1;
    sn_snd_wl2;
    sn_peer_mss;
    sn_snd_wscale;
    sn_rcv_wscale;
    sn_ts_on;
    sn_ts_recent;
    sn_sack_on;
    sn_sack_ranges;
    sn_fin_queued;
    sn_fin_sent;
    sn_irs;
    sn_rcv_nxt;
    sn_reasm;
    sn_rcv_fin;
    sn_eof_signalled;
    sn_srtt;
    sn_rttvar;
    sn_rto_base;
    sn_rto_shift;
    sn_cwnd;
    sn_ssthresh;
    sn_retained_input;
    sn_replay_base = replay_base;
  }

(* --- full transfer unit ------------------------------------------- *)

let write_conn_tail b c =
  Codec.W.u8 b (role_tag c.role);
  Codec.W.u32 b (c.delta land 0xFFFF_FFFF);
  w_seq b c.next_wire_seq;
  Codec.W.u32 b c.held_segments;
  Codec.W.bool b c.solo

let encode c =
  let b = Codec.W.create () in
  (if c.tcb.Tcb.sn_replay_base = 0 then Codec.W.u8 b form_full
   else begin
     Codec.W.u8 b form_delta;
     Codec.W.u64 b (Int64.of_int c.tcb.Tcb.sn_replay_base)
   end);
  write_tcb b c.tcb;
  write_conn_tail b c;
  Codec.seal (Codec.W.contents b)

(* The legacy v2 image (no form tag, no replay base) — kept so peers and
   tests can exercise the full↔delta version negotiation.  Only a full
   snapshot fits the v2 layout. *)
let encode_v2 c =
  if c.tcb.Tcb.sn_replay_base <> 0 then
    invalid_arg "Snapshot.encode_v2: delta snapshots need envelope v3";
  let b = Codec.W.create () in
  write_tcb b c.tcb;
  write_conn_tail b c;
  Codec.seal_at ~version:2 (Codec.W.contents b)

let decode s =
  match Codec.unseal_versioned s with
  | Error _ as e -> (match e with Error m -> Error m | _ -> assert false)
  | Ok (version, body) -> (
    try
      let r = Codec.R.of_string body in
      let replay_base =
        if version <= 2 then 0
        else
          let tag = Codec.R.u8 r in
          if tag = form_full then 0
          else if tag = form_delta then Int64.to_int (Codec.R.u64 r)
          else
            raise
              (Codec.Corrupt
                 (Printf.sprintf "invalid snapshot form tag %d" tag))
      in
      let tcb = read_tcb r ~replay_base in
      let role = role_of_tag (Codec.R.u8 r) in
      let delta =
        (* sign-extend the 32-bit two's-complement field *)
        let v = Codec.R.u32 r in
        if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v
      in
      let next_wire_seq = r_seq r in
      let held_segments = Codec.R.u32 r in
      let solo = Codec.R.bool r in
      if not (Codec.R.at_end r) then Error "trailing bytes in snapshot"
      else Ok { tcb; role; delta; next_wire_seq; held_segments; solo }
    with Codec.Corrupt m -> Error m)
