(* Streaming control channel + transfer manager.

   Transfers ride an in-sim control channel: raw IP protocol 254
   datagrams between the surviving host and the repaired replica
   (heartbeats use 253).  A sealed snapshot no longer crosses the wire
   as one monolithic envelope: the sender slices it into MSS-bounded
   installments and streams them under a sliding window, so no transfer
   datagram ever exceeds what the data path itself would carry:

     sender  --- Chunk {xfer_id, seq, total, data}  --->  receiver
     sender  <-- Ack {xfer_id, next}                ---   (cumulative)
     ...
     sender  <-- Accept {xfer_id} | Reject {xfer_id, reason} --

   Every datagram is individually sealed in the versioned envelope, so a
   corrupted installment is indistinguishable from a lost one and the
   retransmission machinery covers both.  The receiver assembles chunks
   incrementally and acknowledges the lowest seq it still needs; the
   sender retransmits only that gap on an RTO taken from [lib/tcp]'s
   estimator ({!Tcpfo_tcp.Rto}), backing off exponentially and giving up
   only after a bounded number of silent timeouts — so a lossy LAN
   delays a transfer instead of stranding the connection solo, while a
   genuinely dead peer still degrades cleanly.  Because the receiver's
   reassembly state survives the gaps, an interrupted transfer resumes
   where it stopped rather than restarting. *)

module Time = Tcpfo_sim.Time
module Engine = Tcpfo_sim.Engine
module Ipaddr = Tcpfo_packet.Ipaddr
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Ip_layer = Tcpfo_ip.Ip_layer
module Host = Tcpfo_host.Host
module Rto = Tcpfo_tcp.Rto
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

let proto = 254

(* The chunk bound mirrors the data path's MSS: a transfer datagram must
   never be bigger than a full-sized TCP segment's payload would be
   ({!Tcpfo_tcp.Tcp_config.default}.mss). *)
let max_datagram_bytes = 1460

(* Fixed per-chunk cost: 18-byte sealed envelope (magic, version, body
   length, FNV-1a-64 digest) + 1 kind + 4 xfer_id + 4 seq + 4 total +
   4 data length. *)
let chunk_overhead = 35
let default_window = 8
let default_max_attempts = 12

(* Conservative cap on advertised chunk counts, so a corrupted-but-
   validly-sealed header cannot make the receiver allocate gigabytes. *)
let max_total_chunks = 1 lsl 20

type msg =
  | Chunk of { xfer_id : int; seq : int; total : int; data : string }
  | Ack of { xfer_id : int; next : int }
  | Accept of { xfer_id : int }
  | Reject of { xfer_id : int; reason : string }

let encode_msg m =
  let b = Codec.W.create () in
  (match m with
  | Chunk { xfer_id; seq; total; data } ->
    Codec.W.u8 b 0;
    Codec.W.u32 b xfer_id;
    Codec.W.u32 b seq;
    Codec.W.u32 b total;
    Codec.W.str b data
  | Ack { xfer_id; next } ->
    Codec.W.u8 b 1;
    Codec.W.u32 b xfer_id;
    Codec.W.u32 b next
  | Accept { xfer_id } ->
    Codec.W.u8 b 2;
    Codec.W.u32 b xfer_id
  | Reject { xfer_id; reason } ->
    Codec.W.u8 b 3;
    Codec.W.u32 b xfer_id;
    Codec.W.str b reason);
  Codec.seal (Codec.W.contents b)

let decode_msg s =
  match Codec.unseal s with
  | Error _ -> None
  | Ok body -> (
    try
      let r = Codec.R.of_string body in
      let kind = Codec.R.u8 r in
      let xfer_id = Codec.R.u32 r in
      let m =
        match kind with
        | 0 ->
          let seq = Codec.R.u32 r in
          let total = Codec.R.u32 r in
          let data = Codec.R.str r in
          Some (Chunk { xfer_id; seq; total; data })
        | 1 -> Some (Ack { xfer_id; next = Codec.R.u32 r })
        | 2 -> Some (Accept { xfer_id })
        | 3 -> Some (Reject { xfer_id; reason = Codec.R.str r })
        | _ -> None
      in
      match m with
      | Some _ when not (Codec.R.at_end r) -> None
      | m -> m
    with Codec.Corrupt _ -> None)

(* --- sender-side state --------------------------------------------- *)

type outgoing = {
  o_dst : Ipaddr.t;
  o_payload : string;  (* the sealed snapshot image *)
  o_chunk_data : int;  (* data bytes per installment *)
  o_total : int;
  o_window : int;
  o_max_attempts : int;
  o_rto : Rto.t;
  mutable o_next_needed : int;  (* receiver's cumulative frontier *)
  mutable o_sent_hi : int;  (* first seq never transmitted *)
  mutable o_attempts : int;  (* consecutive silent timeouts *)
  mutable o_timer : Engine.event_id option;
  mutable o_probe : (int * Time.t) option;
      (* one un-retransmitted chunk being timed for the RTT estimator;
         cleared on any retransmission at or below it (Karn's rule) *)
  mutable o_done : bool;
  o_on_result : (unit, string) result -> unit;
}

(* --- receiver-side state ------------------------------------------- *)

type incoming =
  | Assembling of {
      a_total : int;
      a_slots : string option array;
      mutable a_next : int;  (* lowest seq still missing *)
    }
  | Verdict of (unit, string) result
      (* transfer finished: chunks dropped, verdict kept so a
         retransmitted installment re-elicits the (possibly lost)
         Accept/Reject instead of reinstalling the connection *)

type t = {
  host : Host.t;
  obs : Obs.t;
  mutable installer :
    (src:Ipaddr.t -> Snapshot.conn -> (unit, string) result) option;
  pending : (int, outgoing) Hashtbl.t;
  incoming : (int * int, incoming) Hashtbl.t;  (* (src, xfer_id) *)
  mutable next_id : int;
  mutable last_rtt : Time.t option;
      (* most recent clean RTT sample across all offers on this channel;
         feeds the reintegration scheduler's auto-pacing *)
  (* world-absolute [statex.*] scope: both ends of a transfer share the
     registry, so these aggregate across hosts like the bridge metrics *)
  offers_sent : Registry.counter;
  offers_received : Registry.counter;
  accepts : Registry.counter;
  rejects : Registry.counter;
  timeouts : Registry.counter;
  transfer_bytes : Registry.counter;
  chunks_sent : Registry.counter;
  chunks_received : Registry.counter;
  chunk_retransmits : Registry.counter;
  duplicate_chunks : Registry.counter;
  corrupt_datagrams : Registry.counter;
}

let send_msg t ~dst m =
  let data = encode_msg m in
  assert (String.length data <= max_datagram_bytes);
  Ip_layer.send (Host.ip t.host)
    (Ipv4_packet.make ~src:(Host.addr t.host) ~dst
       (Ipv4_packet.Raw { proto; data }))

(* --- sender -------------------------------------------------------- *)

let chunk_of o seq =
  let lo = seq * o.o_chunk_data in
  let len = min o.o_chunk_data (String.length o.o_payload - lo) in
  String.sub o.o_payload lo len

let send_chunk t o xfer_id seq =
  Registry.Counter.incr t.chunks_sent;
  send_msg t ~dst:o.o_dst
    (Chunk { xfer_id; seq; total = o.o_total; data = chunk_of o seq })

(* Ship never-sent chunks up to a full window beyond the receiver's
   frontier; the first of them becomes the RTT probe if none is
   outstanding. *)
let rec refill t xfer_id o =
  let hi = min o.o_total (o.o_next_needed + o.o_window) in
  let lo = max o.o_next_needed o.o_sent_hi in
  if lo < hi then begin
    if o.o_probe = None then
      o.o_probe <- Some (lo, (Host.clock t.host).now ());
    for seq = lo to hi - 1 do
      send_chunk t o xfer_id seq
    done;
    o.o_sent_hi <- hi
  end;
  arm_timer t xfer_id o

(* RTO-driven resend of the gap the receiver last acknowledged up to —
   only the missing installments go out again, never the whole image.
   When everything is already delivered ([o_next_needed = o_total]) the
   verdict itself must have been lost: re-poke the receiver with the
   final chunk so it re-answers from its kept verdict. *)
and retransmit_gap t xfer_id o =
  o.o_probe <- None;  (* Karn: retransmitted flights never feed the RTT *)
  let lo = min o.o_next_needed (o.o_total - 1) in
  let hi = max o.o_sent_hi (lo + 1) in
  for seq = lo to hi - 1 do
    Registry.Counter.incr t.chunk_retransmits;
    send_chunk t o xfer_id seq
  done;
  arm_timer t xfer_id o

and arm_timer t xfer_id o =
  let clock = Host.clock t.host in
  (match o.o_timer with Some id -> clock.cancel id | None -> ());
  o.o_timer <-
    Some
      (clock.schedule (Rto.current o.o_rto) (fun () ->
           on_timeout t xfer_id o))

and on_timeout t xfer_id o =
  if not o.o_done then begin
    o.o_attempts <- o.o_attempts + 1;
    if o.o_attempts > o.o_max_attempts then begin
      o.o_done <- true;
      o.o_timer <- None;
      Hashtbl.remove t.pending xfer_id;
      Registry.Counter.incr t.timeouts;
      o.o_on_result (Error "transfer retry budget exhausted")
    end
    else begin
      Rto.backoff o.o_rto;
      retransmit_gap t xfer_id o
    end
  end

let finish t xfer_id o result =
  if not o.o_done then begin
    o.o_done <- true;
    (match o.o_timer with
    | Some id -> (Host.clock t.host).cancel id
    | None -> ());
    o.o_timer <- None;
    Hashtbl.remove t.pending xfer_id;
    (match result with
    | Ok () ->
      Registry.Counter.incr t.accepts;
      Registry.Counter.add t.transfer_bytes (String.length o.o_payload)
    | Error _ -> ());
    o.o_on_result result
  end

let handle_ack t ~xfer_id ~next =
  match Hashtbl.find_opt t.pending xfer_id with
  | None -> ()
  | Some o ->
    if next > o.o_next_needed && next <= o.o_total then begin
      (match o.o_probe with
      | Some (p, t0) when next > p ->
        let rtt = (Host.clock t.host).now () - t0 in
        Rto.sample o.o_rto rtt;
        t.last_rtt <- Some rtt;
        o.o_probe <- None
      | _ -> ());
      o.o_next_needed <- next;
      o.o_attempts <- 0;
      Rto.reset_backoff o.o_rto;
      if next < o.o_total then refill t xfer_id o
      else
        (* everything delivered; keep the timer armed so a lost verdict
           is re-elicited rather than waited on forever *)
        arm_timer t xfer_id o
    end

(* --- receiver ------------------------------------------------------ *)

let send_verdict t ~dst ~xfer_id = function
  | Ok () -> send_msg t ~dst (Accept { xfer_id })
  | Error reason -> send_msg t ~dst (Reject { xfer_id; reason })

let install_payload t ~src payload =
  match Snapshot.decode payload with
  | Error e -> Error e
  | Ok conn -> (
    match t.installer with
    | None -> Error "no installer registered"
    | Some install -> install ~src conn)

let handle_chunk t ~src ~xfer_id ~seq ~total ~data =
  Registry.Counter.incr t.chunks_received;
  let key = (Ipaddr.to_int src, xfer_id) in
  let state =
    match Hashtbl.find_opt t.incoming key with
    | Some st -> Some st
    | None ->
      if total < 1 || total > max_total_chunks then None
      else begin
        (* first installment of a new transfer *)
        Registry.Counter.incr t.offers_received;
        let st =
          Assembling { a_total = total; a_slots = Array.make total None;
                       a_next = 0 }
        in
        Hashtbl.replace t.incoming key st;
        Some st
      end
  in
  match state with
  | None -> ()
  | Some (Verdict v) ->
    (* the sender re-poked: its Accept/Reject must have been lost *)
    Registry.Counter.incr t.duplicate_chunks;
    send_verdict t ~dst:src ~xfer_id v
  | Some (Assembling a) ->
    if total <> a.a_total || seq < 0 || seq >= a.a_total then ()
    else begin
      (match a.a_slots.(seq) with
      | Some _ -> Registry.Counter.incr t.duplicate_chunks
      | None ->
        a.a_slots.(seq) <- Some data;
        while a.a_next < a.a_total && a.a_slots.(a.a_next) <> None do
          a.a_next <- a.a_next + 1
        done);
      send_msg t ~dst:src (Ack { xfer_id; next = a.a_next });
      if a.a_next = a.a_total then begin
        let payload =
          String.concat ""
            (Array.to_list
               (Array.map (function Some s -> s | None -> "") a.a_slots))
        in
        let verdict = install_payload t ~src payload in
        (match verdict with
        | Ok () -> ()
        | Error _ -> Registry.Counter.incr t.rejects);
        (* drop the assembled chunks, keep only the verdict *)
        Hashtbl.replace t.incoming key (Verdict verdict);
        send_verdict t ~dst:src ~xfer_id verdict
      end
    end

let handle_msg t ~src m =
  match m with
  | Chunk { xfer_id; seq; total; data } ->
    handle_chunk t ~src ~xfer_id ~seq ~total ~data
  | Ack { xfer_id; next } -> handle_ack t ~xfer_id ~next
  | Accept { xfer_id } -> (
    match Hashtbl.find_opt t.pending xfer_id with
    | None -> ()
    | Some o -> finish t xfer_id o (Ok ()))
  | Reject { xfer_id; reason } -> (
    match Hashtbl.find_opt t.pending xfer_id with
    | None -> ()
    | Some o -> finish t xfer_id o (Error reason))

let attach host =
  let obs = Obs.scope (Obs.root (Host.obs host)) "statex" in
  let t =
    {
      host;
      obs;
      installer = None;
      pending = Hashtbl.create 8;
      incoming = Hashtbl.create 8;
      next_id = 1;
      last_rtt = None;
      offers_sent = Obs.counter obs "offers_sent";
      offers_received = Obs.counter obs "offers_received";
      accepts = Obs.counter obs "accepts";
      rejects = Obs.counter obs "rejects";
      timeouts = Obs.counter obs "timeouts";
      transfer_bytes = Obs.counter obs "transfer_bytes";
      chunks_sent = Obs.counter obs "chunks_sent";
      chunks_received = Obs.counter obs "chunks_received";
      chunk_retransmits = Obs.counter obs "chunk_retransmits";
      duplicate_chunks = Obs.counter obs "duplicate_chunks";
      corrupt_datagrams = Obs.counter obs "corrupt_datagrams";
    }
  in
  (* chain, don't steal: other raw protocols on this host (e.g. the
     dispatcher's health probes) keep their handler *)
  let inner = Ip_layer.raw_handler (Host.ip host) in
  Ip_layer.set_raw_handler (Host.ip host) (fun ~src ~proto:p data ->
      if p = proto then
        match decode_msg data with
        | Some m -> handle_msg t ~src m
        | None -> Registry.Counter.incr t.corrupt_datagrams
      else inner ~src ~proto:p data);
  t

let set_installer t f = t.installer <- Some f

let offer t ?(chunk_bytes = max_datagram_bytes) ?(window = default_window)
    ?(max_attempts = default_max_attempts) ~dst conn ~on_result =
  if chunk_bytes <= chunk_overhead then
    invalid_arg "Transfer.offer: chunk_bytes must exceed the chunk header";
  if chunk_bytes > max_datagram_bytes then
    invalid_arg "Transfer.offer: chunk_bytes above the MSS datagram bound";
  let xfer_id = t.next_id in
  t.next_id <- t.next_id + 1;
  let payload = Snapshot.encode conn in
  let chunk_data = chunk_bytes - chunk_overhead in
  let total = (String.length payload + chunk_data - 1) / chunk_data in
  let total = max 1 total in
  let o =
    {
      o_dst = dst;
      o_payload = payload;
      o_chunk_data = chunk_data;
      o_total = total;
      o_window = max 1 window;
      o_max_attempts = max 1 max_attempts;
      o_rto =
        Rto.create ~obs:t.obs ~init:(Time.ms 10) ~min:(Time.ms 2)
          ~max:(Time.ms 256) ();
      o_next_needed = 0;
      o_sent_hi = 0;
      o_attempts = 0;
      o_timer = None;
      o_probe = None;
      o_done = false;
      o_on_result = on_result;
    }
  in
  Registry.Counter.incr t.offers_sent;
  Hashtbl.replace t.pending xfer_id o;
  refill t xfer_id o

let pending_count t = Hashtbl.length t.pending
let rtt_estimate t = t.last_rtt

(* One full window of MSS-sized chunks per RTT: the spacing at which a
   steady stream of small snapshots saturates the channel without ever
   queueing more than a window.  Before the first sample, a LAN-scale
   guess. *)
let suggested_pace t =
  match t.last_rtt with
  | Some rtt -> max (Time.us 10) (rtt / default_window)
  | None -> Time.us 200

type stats = {
  offers_sent : int;
  offers_received : int;
  accepts : int;
  rejects : int;
  timeouts : int;
  transfer_bytes : int;
  chunks_sent : int;
  chunks_received : int;
  chunk_retransmits : int;
  duplicate_chunks : int;
}

let stats (t : t) =
  let v = Registry.Counter.value in
  {
    offers_sent = v t.offers_sent;
    offers_received = v t.offers_received;
    accepts = v t.accepts;
    rejects = v t.rejects;
    timeouts = v t.timeouts;
    transfer_bytes = v t.transfer_bytes;
    chunks_sent = v t.chunks_sent;
    chunks_received = v t.chunks_received;
    chunk_retransmits = v t.chunk_retransmits;
    duplicate_chunks = v t.duplicate_chunks;
  }
