(* Control channel + transfer manager.

   Transfers ride an in-sim control channel: raw IP protocol 254
   datagrams between the surviving host and the repaired replica
   (heartbeats use 253).  The protocol is a single round trip per
   connection:

     survivor  --- Offer {xfer_id, sealed snapshot} --->  repaired host
     survivor  <-- Accept {xfer_id} | Reject {xfer_id, reason} --

   The receiver decodes and verifies the envelope, hands the snapshot to
   the installer the orchestrator registered, and answers.  The sender
   times out unanswered offers so a second failure during reintegration
   degrades cleanly instead of wedging. *)

module Time = Tcpfo_sim.Time
module Ipaddr = Tcpfo_packet.Ipaddr
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Ip_layer = Tcpfo_ip.Ip_layer
module Host = Tcpfo_host.Host
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

let proto = 254
let default_timeout = Time.ms 20

type pending = {
  on_result : (unit, string) result -> unit;
  payload_bytes : int;
}

type t = {
  host : Host.t;
  mutable installer :
    (src:Ipaddr.t -> Snapshot.conn -> (unit, string) result) option;
  pending : (int, pending) Hashtbl.t;
  mutable next_id : int;
  (* world-absolute [statex.*] scope: both ends of a transfer share the
     registry, so these aggregate across hosts like the bridge metrics *)
  offers_sent : Registry.counter;
  offers_received : Registry.counter;
  accepts : Registry.counter;
  rejects : Registry.counter;
  timeouts : Registry.counter;
  transfer_bytes : Registry.counter;
}

type msg =
  | Offer of { xfer_id : int; payload : string }
  | Accept of { xfer_id : int }
  | Reject of { xfer_id : int; reason : string }

let encode_msg m =
  let b = Codec.W.create () in
  (match m with
  | Offer { xfer_id; payload } ->
    Codec.W.u8 b 0;
    Codec.W.u32 b xfer_id;
    Codec.W.str b payload
  | Accept { xfer_id } ->
    Codec.W.u8 b 1;
    Codec.W.u32 b xfer_id
  | Reject { xfer_id; reason } ->
    Codec.W.u8 b 2;
    Codec.W.u32 b xfer_id;
    Codec.W.str b reason);
  Codec.W.contents b

let decode_msg s =
  try
    let r = Codec.R.of_string s in
    let kind = Codec.R.u8 r in
    let xfer_id = Codec.R.u32 r in
    match kind with
    | 0 -> Some (Offer { xfer_id; payload = Codec.R.str r })
    | 1 -> Some (Accept { xfer_id })
    | 2 -> Some (Reject { xfer_id; reason = Codec.R.str r })
    | _ -> None
  with Codec.Corrupt _ -> None

let send_msg t ~dst m =
  Ip_layer.send (Host.ip t.host)
    (Ipv4_packet.make ~src:(Host.addr t.host) ~dst
       (Ipv4_packet.Raw { proto; data = encode_msg m }))

let handle_offer t ~src ~xfer_id ~payload =
  Registry.Counter.incr t.offers_received;
  let verdict =
    match Snapshot.decode payload with
    | Error e -> Error e
    | Ok conn -> (
      match t.installer with
      | None -> Error "no installer registered"
      | Some install -> install ~src conn)
  in
  match verdict with
  | Ok () -> send_msg t ~dst:src (Accept { xfer_id })
  | Error reason ->
    Registry.Counter.incr t.rejects;
    send_msg t ~dst:src (Reject { xfer_id; reason })

let handle_msg t ~src m =
  match m with
  | Offer { xfer_id; payload } -> handle_offer t ~src ~xfer_id ~payload
  | Accept { xfer_id } -> (
    match Hashtbl.find_opt t.pending xfer_id with
    | None -> ()
    | Some p ->
      Hashtbl.remove t.pending xfer_id;
      Registry.Counter.incr t.accepts;
      Registry.Counter.add t.transfer_bytes p.payload_bytes;
      p.on_result (Ok ()))
  | Reject { xfer_id; reason } -> (
    match Hashtbl.find_opt t.pending xfer_id with
    | None -> ()
    | Some p ->
      Hashtbl.remove t.pending xfer_id;
      p.on_result (Error reason))

let attach host =
  let obs = Obs.scope (Obs.root (Host.obs host)) "statex" in
  let t =
    {
      host;
      installer = None;
      pending = Hashtbl.create 8;
      next_id = 1;
      offers_sent = Obs.counter obs "offers_sent";
      offers_received = Obs.counter obs "offers_received";
      accepts = Obs.counter obs "accepts";
      rejects = Obs.counter obs "rejects";
      timeouts = Obs.counter obs "timeouts";
      transfer_bytes = Obs.counter obs "transfer_bytes";
    }
  in
  Ip_layer.set_raw_handler (Host.ip host) (fun ~src ~proto:p data ->
      if p = proto then
        match decode_msg data with
        | Some m -> handle_msg t ~src m
        | None -> ());
  t

let set_installer t f = t.installer <- Some f

let offer t ?(timeout = default_timeout) ~dst conn ~on_result =
  let xfer_id = t.next_id in
  t.next_id <- t.next_id + 1;
  let payload = Snapshot.encode conn in
  Registry.Counter.incr t.offers_sent;
  Hashtbl.replace t.pending xfer_id
    { on_result; payload_bytes = String.length payload };
  send_msg t ~dst (Offer { xfer_id; payload });
  ignore
    ((Host.clock t.host).schedule timeout (fun () ->
         match Hashtbl.find_opt t.pending xfer_id with
         | None -> ()
         | Some p ->
           Hashtbl.remove t.pending xfer_id;
           Registry.Counter.incr t.timeouts;
           p.on_result (Error "transfer timed out")))

let pending_count t = Hashtbl.length t.pending

type stats = {
  offers_sent : int;
  offers_received : int;
  accepts : int;
  rejects : int;
  timeouts : int;
  transfer_bytes : int;
}

let stats (t : t) =
  let v = Registry.Counter.value in
  {
    offers_sent = v t.offers_sent;
    offers_received = v t.offers_received;
    accepts = v t.accepts;
    rejects = v t.rejects;
    timeouts = v t.timeouts;
    transfer_bytes = v t.transfer_bytes;
  }
