(** Big-endian binary codec with a versioned, integrity-checked envelope
    ([TFX1] magic, u16 version, u32 body length, FNV-1a-64 digest).

    Writers never fail; readers raise {!Corrupt} on malformed input, and
    {!unseal} converts any decoding problem into [Error] so a damaged
    snapshot is rejected before anything is installed. *)

exception Corrupt of string

module W : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit
  val bool : t -> bool -> unit
  val str : t -> string -> unit
  val float : t -> float -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val contents : t -> string
end

module R : sig
  type t

  val of_string : string -> t
  val raw : t -> int -> string
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val bool : t -> bool
  val str : t -> string
  val float : t -> float
  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val at_end : t -> bool
end

val fnv1a64 : string -> int64

val version : int
(** Envelope version written by {!seal}. *)

val min_version : int
(** Oldest envelope version {!unseal} still accepts (full v2 snapshots
    remain decodable after the delta-snapshot upgrade). *)

val seal : string -> string
(** Wrap a body in the versioned envelope (at {!version}). *)

val seal_at : version:int -> string -> string
(** {!seal} at an explicit version in [min_version .. version]; raises
    [Invalid_argument] outside the range.  Used by writers that must
    stay readable by older peers, and by tests crafting legacy
    envelopes. *)

val unseal : string -> (string, string) result
(** Verify magic, version, length and digest; return the body.  Accepts
    any version in [min_version .. version]. *)

val unseal_versioned : string -> (int * string, string) result
(** {!unseal}, also returning the envelope version so layout-versioned
    payloads (snapshots) can pick the right decoder. *)
