(** Per-host endpoint of the hot-state-transfer control channel (raw IP
    protocol 254).

    One [t] per host serves both roles: it ships snapshots out
    ({!offer}) and installs snapshots in (via the orchestrator-supplied
    installer).

    Snapshots stream as MSS-bounded installments ([Chunk]) under a
    sliding window; the receiver assembles them incrementally and
    answers each with a cumulative [Ack] carrying the lowest seq it
    still needs.  The sender retransmits only that gap, on an RTO from
    {!Tcpfo_tcp.Rto} with exponential backoff, and aborts only after
    a bounded number of consecutive silent timeouts — so loss delays a
    transfer instead of stranding the connection, while a dead peer
    still fails cleanly.  Receiver-side reassembly state survives the
    gaps, so an interrupted transfer resumes where it stopped, and a
    finished transfer keeps its verdict so retransmitted installments
    re-elicit a lost Accept/Reject idempotently.

    Registers counters under the world-absolute [statex.*] scope:
    [offers_sent], [offers_received], [accepts], [rejects], [timeouts],
    [transfer_bytes] (encoded payload bytes of accepted transfers),
    [chunks_sent], [chunks_received], [chunk_retransmits],
    [duplicate_chunks] and [corrupt_datagrams]. *)

type t

val proto : int
(** Raw IP protocol number used by the channel (254). *)

val max_datagram_bytes : int
(** Hard bound on every transfer datagram (sealed envelope included):
    1460 bytes, mirroring the data path's MSS
    ({!Tcpfo_tcp.Tcp_config.default}[.mss]).  Enforced by construction
    on send and asserted per datagram. *)

val chunk_overhead : int
(** Fixed per-chunk cost in bytes: sealed envelope + chunk header.
    [max_datagram_bytes - chunk_overhead] snapshot bytes ride in each
    full installment. *)

(** Wire messages of the streaming protocol, exposed for tests that
    hand-craft datagrams (duplicates, reorderings, stale transfers).
    Every message is individually sealed in the versioned envelope, so
    corruption is indistinguishable from loss and the retransmission
    machinery covers both. *)
type msg =
  | Chunk of { xfer_id : int; seq : int; total : int; data : string }
      (** One installment; [total] rides in every chunk so there is no
          separate offer round-trip to lose. *)
  | Ack of { xfer_id : int; next : int }
      (** Cumulative: [next] is the lowest seq still missing. *)
  | Accept of { xfer_id : int }
  | Reject of { xfer_id : int; reason : string }

val encode_msg : msg -> string
(** Seal a message for the wire. *)

val decode_msg : string -> msg option
(** Unseal and parse; [None] on corruption, unknown kind, or trailing
    bytes. *)

val attach : Tcpfo_host.Host.t -> t
(** Installs itself as the host's raw-protocol handler. *)

val set_installer :
  t ->
  (src:Tcpfo_packet.Ipaddr.t ->
  Snapshot.conn ->
  (unit, string) result) ->
  unit
(** Called for every fully reassembled, verified incoming snapshot;
    [Ok] answers Accept, [Error] answers Reject with the reason.
    Corrupt payloads are rejected before the installer is consulted. *)

val offer :
  t ->
  ?chunk_bytes:int ->
  ?window:int ->
  ?max_attempts:int ->
  dst:Tcpfo_packet.Ipaddr.t ->
  Snapshot.conn ->
  on_result:((unit, string) result -> unit) ->
  unit
(** Encode, stream, and await the peer's verdict.  [on_result] fires
    exactly once: [Ok] on Accept, [Error] on Reject or once
    [max_attempts] (default 12) consecutive RTOs pass without any
    acknowledgement progress — progress resets the budget, so a slow
    lossy channel is distinguished from a dead one.  [chunk_bytes]
    (default {!max_datagram_bytes}) bounds each datagram and must lie
    in []({!chunk_overhead}, {!max_datagram_bytes}]]; [window] (default
    8) caps unacknowledged installments in flight.

    @raise Invalid_argument if [chunk_bytes] is out of range. *)

val pending_count : t -> int
(** Offers awaiting a verdict. *)

val rtt_estimate : t -> Tcpfo_sim.Time.t option
(** Most recent clean (never-retransmitted) chunk round-trip measured on
    this channel, across all offers; [None] until the first sample. *)

val suggested_pace : t -> Tcpfo_sim.Time.t
(** Inter-offer spacing at which a steady stream of small snapshots
    keeps one chunk window in flight per RTT — what the reintegration
    scheduler uses when pacing is requested without an explicit period.
    Derived from {!rtt_estimate} and the chunk window; a LAN-scale
    constant before the first RTT sample. *)

type stats = {
  offers_sent : int;
  offers_received : int;
  accepts : int;
  rejects : int;
  timeouts : int;
  transfer_bytes : int;
  chunks_sent : int;
  chunks_received : int;
  chunk_retransmits : int;
  duplicate_chunks : int;
}

val stats : t -> stats
(** Current values of the [statex.*] counters.  The scope is
    world-absolute, so both endpoints of a pair report the same
    aggregate numbers. *)
