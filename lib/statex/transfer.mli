(** Per-host endpoint of the hot-state-transfer control channel (raw IP
    protocol 254).

    One [t] per host serves both roles: it ships snapshots out
    ({!offer}) and installs snapshots in (via the orchestrator-supplied
    installer).  Registers counters under the world-absolute [statex.*]
    scope: [offers_sent], [offers_received], [accepts], [rejects],
    [timeouts] and [transfer_bytes] (encoded payload bytes of accepted
    transfers). *)

type t

val proto : int
(** Raw IP protocol number used by the channel (254). *)

val attach : Tcpfo_host.Host.t -> t
(** Installs itself as the host's raw-protocol handler. *)

val set_installer :
  t ->
  (src:Tcpfo_packet.Ipaddr.t ->
  Snapshot.conn ->
  (unit, string) result) ->
  unit
(** Called for every verified incoming snapshot; [Ok] answers Accept,
    [Error] answers Reject with the reason.  Corrupt payloads are
    rejected before the installer is consulted. *)

val offer :
  t ->
  ?timeout:Tcpfo_sim.Time.t ->
  dst:Tcpfo_packet.Ipaddr.t ->
  Snapshot.conn ->
  on_result:((unit, string) result -> unit) ->
  unit
(** Encode, ship, and await the peer's verdict.  [on_result] fires
    exactly once: [Ok] on Accept, [Error] on Reject or after [timeout]
    (default 20 ms) of silence. *)

val pending_count : t -> int
(** Offers awaiting a verdict. *)

type stats = {
  offers_sent : int;
  offers_received : int;
  accepts : int;
  rejects : int;
  timeouts : int;
  transfer_bytes : int;
}

val stats : t -> stats
(** Current values of the [statex.*] counters.  The scope is
    world-absolute, so both endpoints of a pair report the same
    aggregate numbers. *)
