(* Minimal big-endian binary codec with a versioned, integrity-checked
   envelope.  Deliberately dependency-free: the simulator ships TCB
   snapshots between hosts as opaque strings, and a corrupted or
   truncated payload must surface as [Error], never as a half-installed
   connection. *)

exception Corrupt of string

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

  let u16 b v =
    u8 b (v lsr 8);
    u8 b v

  let u32 b v =
    u16 b (v lsr 16);
    u16 b v

  let u64 b (v : int64) =
    for i = 7 downto 0 do
      u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
    done

  let bool b v = u8 b (if v then 1 else 0)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let float b f = u64 b (Int64.bits_of_float f)

  let option b f = function
    | None -> bool b false
    | Some v ->
      bool b true;
      f b v

  let list b f l =
    u32 b (List.length l);
    List.iter (f b) l

  let contents = Buffer.contents
end

module R = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }

  let need r n =
    if n < 0 || r.pos + n > String.length r.data then
      raise (Corrupt "truncated payload")

  let raw r n =
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let u8 r =
    need r 1;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let a = u8 r in
    let b = u8 r in
    (a lsl 8) lor b

  let u32 r =
    let a = u16 r in
    let b = u16 r in
    (a lsl 16) lor b

  let u64 r =
    let v = ref 0L in
    for _ = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (u8 r))
    done;
    !v

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | n -> raise (Corrupt (Printf.sprintf "invalid bool tag %d" n))

  let str r =
    let n = u32 r in
    raw r n

  let float r = Int64.float_of_bits (u64 r)

  let option r f = if bool r then Some (f r) else None

  let list r f =
    let n = u32 r in
    List.init n (fun _ -> f r)

  let at_end r = r.pos = String.length r.data
end

(* FNV-1a 64-bit over the body — cheap, deterministic, and sensitive to
   any single-bit flip, which is all the integrity check needs inside a
   simulator (this is corruption detection, not authentication). *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

let magic = "TFX1"

(* v2: Snapshot.conn carries the connection role (server / client) so
   restored §7.2 client-role connections re-attach their application
   layer through the connect_backend setup registry.

   v3: the snapshot body opens with a form tag — full images keep the v2
   layout, delta images additionally carry the checkpoint replay base.
   Readers accept [min_version .. version] so full v2 snapshots remain
   decodable across the upgrade. *)
let version = 3
let min_version = 2

(* v2 sealed only the body (historic format, unchangeable); v3+ folds
   the version into the digest so a flipped version byte — which would
   route the body through the wrong layout decoder — fails the
   integrity check instead of being parsed misaligned. *)
let digest_at ~version:v body =
  if v <= 2 then fnv1a64 body
  else Int64.logxor (fnv1a64 body) (Int64.of_int v)

let seal_at ~version:v body =
  if v < min_version || v > version then
    invalid_arg (Printf.sprintf "Codec.seal_at: version %d out of range" v);
  let b = Buffer.create (String.length body + 18) in
  Buffer.add_string b magic;
  W.u16 b v;
  W.u32 b (String.length body);
  Buffer.add_string b body;
  W.u64 b (digest_at ~version:v body);
  Buffer.contents b

let seal body = seal_at ~version body

let unseal_versioned s =
  try
    let r = R.of_string s in
    if R.raw r 4 <> magic then Error "bad magic"
    else
      let v = R.u16 r in
      if v < min_version || v > version then
        Error (Printf.sprintf "unsupported version %d" v)
      else
        let len = R.u32 r in
        let body = R.raw r len in
        let sum = R.u64 r in
        if not (R.at_end r) then Error "trailing bytes after envelope"
        else if not (Int64.equal sum (digest_at ~version:v body)) then
          Error "integrity check failed"
        else Ok (v, body)
  with Corrupt m -> Error m

let unseal s = Result.map snd (unseal_versioned s)
