(** The unit of hot state transfer: one connection's full TCB image plus
    the bridge-side state the surviving host held for it.

    The TCB image travels in the *wire* (client-visible) sequence space:
    a surviving primary shifts its snapshot by −Δseq before shipping
    ({!Tcpfo_tcp.Tcb.shift_snapshot}); a promoted secondary's state is
    already in wire space (Δ = 0). *)

type role = [ `Server | `Client ]
(** Which side of the connection the replicated application holds:
    [`Server] for {!Tcpfo_tcp.Stack.listen}-accepted connections,
    [`Client] for §7.2 server-initiated ([connect_backend]) connections.
    The installer on the receiving replica needs it to rebuild the
    application layer: server-role connections re-attach through the
    registered listener, client-role connections through the
    [connect_backend] setup registered for the remote endpoint. *)

type conn = {
  tcb : Tcpfo_tcp.Tcb.snapshot;
  role : role;
  delta : int;
      (** Δseq the surviving bridge applied for this connection — carried
          for validation and metrics; the restored pair always starts at
          Δ = 0 with respect to the shipped image. *)
  next_wire_seq : Tcpfo_util.Seq32.t;
      (** Merge frontier (next un-emitted wire sequence) at capture. *)
  held_segments : int;
      (** Segments parked in the quiesce hold-back queue at capture. *)
  solo : bool;  (** Whether the connection was running unreplicated. *)
}

val encode : conn -> string
(** Binary image wrapped in the versioned, checksummed envelope. *)

val decode : string -> (conn, string) result
(** Inverse of {!encode}; any corruption or truncation yields [Error]. *)
