(** The unit of hot state transfer: one connection's full TCB image plus
    the bridge-side state the surviving host held for it.

    The TCB image travels in the *wire* (client-visible) sequence space:
    a surviving primary shifts its snapshot by −Δseq before shipping
    ({!Tcpfo_tcp.Tcb.shift_snapshot}); a promoted secondary's state is
    already in wire space (Δ = 0). *)

type role = [ `Server | `Client ]
(** Which side of the connection the replicated application holds:
    [`Server] for {!Tcpfo_tcp.Stack.listen}-accepted connections,
    [`Client] for §7.2 server-initiated ([connect_backend]) connections.
    The installer on the receiving replica needs it to rebuild the
    application layer: server-role connections re-attach through the
    registered listener, client-role connections through the
    [connect_backend] setup registered for the remote endpoint. *)

type conn = {
  tcb : Tcpfo_tcp.Tcb.snapshot;
  role : role;
  delta : int;
      (** Δseq the surviving bridge applied for this connection — carried
          for validation and metrics; the restored pair always starts at
          Δ = 0 with respect to the shipped image. *)
  next_wire_seq : Tcpfo_util.Seq32.t;
      (** Merge frontier (next un-emitted wire sequence) at capture. *)
  held_segments : int;
      (** Segments parked in the quiesce hold-back queue at capture. *)
  solo : bool;  (** Whether the connection was running unreplicated. *)
}

val encode : conn -> string
(** Binary image wrapped in the versioned, checksummed envelope.

    Since envelope v3 the body opens with a form tag: [Full] carries the
    legacy layout (replay base 0, whole retained history); [Delta] adds
    the checkpoint replay base, and its retained-input list holds only
    post-checkpoint deliveries — the form a checkpointing long-lived
    connection ships, kilobytes instead of lifetime history.  The form
    is chosen from [tcb.sn_replay_base]; decoders accept both. *)

val encode_v2 : conn -> string
(** The legacy v2 image (no form tag, no replay base), kept so the
    full↔delta version negotiation stays exercised: any v3 decoder must
    accept it.  Raises [Invalid_argument] when [tcb.sn_replay_base] is
    nonzero — a delta snapshot does not fit the v2 layout. *)

val decode : string -> (conn, string) result
(** Inverse of {!encode}; accepts v3 full and delta forms plus legacy v2
    envelopes.  Any corruption, truncation, or unknown form tag yields
    [Error]. *)
