(** The unit of hot state transfer: one connection's full TCB image plus
    the bridge-side state the surviving host held for it.

    The TCB image travels in the *wire* (client-visible) sequence space:
    a surviving primary shifts its snapshot by −Δseq before shipping
    ({!Tcpfo_tcp.Tcb.shift_snapshot}); a promoted secondary's state is
    already in wire space (Δ = 0). *)

type conn = {
  tcb : Tcpfo_tcp.Tcb.snapshot;
  delta : int;
      (** Δseq the surviving bridge applied for this connection — carried
          for validation and metrics; the restored pair always starts at
          Δ = 0 with respect to the shipped image. *)
  next_wire_seq : Tcpfo_util.Seq32.t;
      (** Merge frontier (next un-emitted wire sequence) at capture. *)
  held_segments : int;
      (** Segments parked in the quiesce hold-back queue at capture. *)
  solo : bool;  (** Whether the connection was running unreplicated. *)
}

val encode : conn -> string
(** Binary image wrapped in the versioned, checksummed envelope. *)

val decode : string -> (conn, string) result
(** Inverse of {!encode}; any corruption or truncation yields [Error]. *)
