module Time = Tcpfo_sim.Time
module Ipaddr = Tcpfo_packet.Ipaddr
module Macaddr = Tcpfo_packet.Macaddr
module Medium = Tcpfo_net.Medium
module Link = Tcpfo_net.Link
module Nic = Tcpfo_net.Nic
module Eth_iface = Tcpfo_ip.Eth_iface

type host = {
  h_name : string;
  h_addr : string;
  h_segment : string;
  h_gateway : string option;
  h_profile : Host.profile option;
  h_tcp : Tcpfo_tcp.Tcp_config.t option;
}

type router = {
  r_name : string;
  r_segment : string;
  r_lan_addr : string;
  r_link : string;
  r_wan_addr : string;
}

type wan_host = {
  w_name : string;
  w_addr : string;
  w_link : string;
  w_profile : Host.profile option;
  w_tcp : Tcpfo_tcp.Tcp_config.t option;
}

type service = { sv_name : string; sv_segment : string; sv_addr : string }

type dispatch = {
  d_name : string;
  d_service : string;
  d_back : string;
  d_shards : string list;
  d_profile : Host.profile option;
}

type decl =
  | Segment of string * Medium.config option
  | Link of string * Link.config
  | Host of host
  | Router of router
  | Wan_host of wan_host
  | Group of string * string list
  | Service of service
  | Dispatch of dispatch

type spec = decl list

(* ------------------------------------------------------------------ *)
(* constructors                                                        *)

let segment ?config name = Segment (name, config)
let link ?(config = Link.default_config) name = Link (name, config)

let host ?gateway ?profile ?tcp_config ~addr ~seg name =
  Host
    {
      h_name = name;
      h_addr = addr;
      h_segment = seg;
      h_gateway = gateway;
      h_profile = profile;
      h_tcp = tcp_config;
    }

let router ~seg ~lan_addr ~link ~wan_addr name =
  Router
    {
      r_name = name;
      r_segment = seg;
      r_lan_addr = lan_addr;
      r_link = link;
      r_wan_addr = wan_addr;
    }

let wan_host ?profile ?tcp_config ~addr ~link name =
  Wan_host
    {
      w_name = name;
      w_addr = addr;
      w_link = link;
      w_profile = profile;
      w_tcp = tcp_config;
    }

let group ~members name = Group (name, members)

let service ~seg ~addr name =
  Service { sv_name = name; sv_segment = seg; sv_addr = addr }

let dispatch ?profile ~service ~back ~shards name =
  Dispatch
    {
      d_name = name;
      d_service = service;
      d_back = back;
      d_shards = shards;
      d_profile = profile;
    }

(* Switch-class packet costs: a dispatcher forwards every fleet packet
   twice (rx + tx), so it must be far cheaper per packet than a paper
   end host or it becomes the bottleneck the tier exists to remove. *)
let dispatch_profile =
  { Host.tx_cost = Time.us 4; rx_cost = Time.us 6; jitter_frac = 0.0;
    hiccup_prob = 0.0 }

(* ------------------------------------------------------------------ *)
(* validation                                                          *)

let is_addr s =
  match Ipaddr.of_string s with
  | (_ : Ipaddr.t) -> true
  | exception _ -> false

let validate (spec : spec) : (unit, string) result =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  (* accumulated declaration environments, in order *)
  let segs = Hashtbl.create 8 in
  (* host namespace: name -> `Lan of segment | `Router | `Wan | `Dispatch *)
  let hosts = Hashtbl.create 16 in
  (* group name -> its (single) segment *)
  let groups = Hashtbl.create 4 in
  (* service name -> (segment, addr); used_services: service -> dispatcher *)
  let services = Hashtbl.create 4 in
  let used_services = Hashtbl.create 4 in
  (* per-segment claimed IPs: (segment, addr) *)
  let seg_addrs = Hashtbl.create 16 in
  (* link name -> (has_router, has_wan_host, wan addrs) *)
  let links : (string, bool ref * bool ref * string list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let claim_addr seg addr who =
    match Hashtbl.find_opt seg_addrs (seg, addr) with
    | Some other ->
      err "duplicate IP %s on segment %S (hosts %S and %S)" addr seg other who
    | None ->
      Hashtbl.add seg_addrs (seg, addr) who;
      Ok ()
  in
  let check_addr who addr =
    if is_addr addr then Ok () else err "host %S: bad address %S" who addr
  in
  let rec go = function
    | [] ->
      (* dangling link endpoints *)
      Hashtbl.fold
        (fun name (r, w, _) acc ->
          match acc with
          | Error _ -> acc
          | Ok () ->
            if not !r then
              err "link %S has no router on its LAN side (dangling endpoint)"
                name
            else if not !w then
              err "link %S has no WAN host (dangling endpoint)" name
            else Ok ())
        links (Ok ())
    | d :: rest -> (
      let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
      let continue () = go rest in
      match d with
      | Segment (name, _) ->
        if Hashtbl.mem segs name then err "duplicate segment %S" name
        else begin
          Hashtbl.add segs name ();
          continue ()
        end
      | Link (name, _) ->
        if Hashtbl.mem links name then err "duplicate link %S" name
        else begin
          Hashtbl.add links name (ref false, ref false, ref []);
          continue ()
        end
      | Host h ->
        if Hashtbl.mem hosts h.h_name then
          err "duplicate host name %S" h.h_name
        else if not (Hashtbl.mem segs h.h_segment) then
          err "host %S: unknown segment %S (segments must be declared first)"
            h.h_name h.h_segment
        else
          let* () = check_addr h.h_name h.h_addr in
          let* () =
            match h.h_gateway with
            | Some g when not (is_addr g) ->
              err "host %S: bad gateway %S" h.h_name g
            | _ -> Ok ()
          in
          let* () = claim_addr h.h_segment h.h_addr h.h_name in
          Hashtbl.add hosts h.h_name (`Lan h.h_segment);
          continue ()
      | Router r -> (
        if Hashtbl.mem hosts r.r_name then
          err "duplicate host name %S" r.r_name
        else if not (Hashtbl.mem segs r.r_segment) then
          err "router %S: unknown segment %S" r.r_name r.r_segment
        else
          let* () = check_addr r.r_name r.r_lan_addr in
          let* () = check_addr r.r_name r.r_wan_addr in
          match Hashtbl.find_opt links r.r_link with
          | None -> err "router %S: unknown link %S" r.r_name r.r_link
          | Some (has_r, _, addrs) ->
            if !has_r then
              err "link %S claimed by two routers (%S is the second)"
                r.r_link r.r_name
            else
              let* () = claim_addr r.r_segment r.r_lan_addr r.r_name in
              has_r := true;
              addrs := r.r_wan_addr :: !addrs;
              Hashtbl.add hosts r.r_name `Router;
              continue ())
      | Wan_host w -> (
        if Hashtbl.mem hosts w.w_name then
          err "duplicate host name %S" w.w_name
        else
          let* () = check_addr w.w_name w.w_addr in
          match Hashtbl.find_opt links w.w_link with
          | None -> err "wan host %S: unknown link %S" w.w_name w.w_link
          | Some (_, has_w, addrs) ->
            if !has_w then
              err "link %S claimed by two WAN hosts (%S is the second)"
                w.w_link w.w_name
            else if List.mem w.w_addr !addrs then
              err "duplicate address %s on link %S" w.w_addr w.w_link
            else begin
              has_w := true;
              addrs := w.w_addr :: !addrs;
              Hashtbl.add hosts w.w_name `Wan;
              continue ()
            end)
      | Group (name, members) -> (
        if Hashtbl.mem groups name then err "duplicate group %S" name
        else if List.length members < 2 then
          err "group %S needs at least two members (a replica pair)" name
        else
          let segs_of =
            List.map
              (fun m ->
                match Hashtbl.find_opt hosts m with
                | Some (`Lan s) -> Ok (m, s)
                | Some (`Router | `Wan | `Dispatch) ->
                  err "group %S: member %S is not a LAN host" name m
                | None -> err "group %S: unknown member %S" name m)
              members
          in
          match
            List.fold_left
              (fun acc r ->
                match (acc, r) with
                | (Error _ as e), _ -> e
                | _, (Error _ as e) -> e
                | Ok acc, Ok x -> Ok (x :: acc))
              (Ok []) segs_of
          with
          | Error e -> Error e
          | Ok pairs -> (
            let dup =
              let seen = Hashtbl.create 4 in
              List.find_opt
                (fun (m, _) ->
                  if Hashtbl.mem seen m then true
                  else begin
                    Hashtbl.add seen m ();
                    false
                  end)
                pairs
            in
            match dup with
            | Some (m, _) -> err "group %S lists member %S twice" name m
            | None -> (
              match pairs with
              | [] -> assert false
              | (_, s0) :: _ -> (
                match List.find_opt (fun (_, s) -> s <> s0) pairs with
                | Some (m, s) ->
                  err
                    "group %S spans segments %S and %S (member %S) — the \
                     snooping model needs one wire"
                    name s0 s m
                | None ->
                  Hashtbl.add groups name s0;
                  continue ()))))
      | Service s ->
        if Hashtbl.mem services s.sv_name then
          err "duplicate service %S" s.sv_name
        else if not (Hashtbl.mem segs s.sv_segment) then
          err "service %S: unknown segment %S" s.sv_name s.sv_segment
        else if not (is_addr s.sv_addr) then
          err "service %S: bad address %S" s.sv_name s.sv_addr
        else
          let* () = claim_addr s.sv_segment s.sv_addr s.sv_name in
          Hashtbl.add services s.sv_name (s.sv_segment, s.sv_addr);
          continue ()
      | Dispatch d -> (
        if Hashtbl.mem hosts d.d_name then
          err "duplicate host name %S" d.d_name
        else if d.d_shards = [] then
          err "dispatch %S needs at least one shard group" d.d_name
        else
          match Hashtbl.find_opt services d.d_service with
          | None -> err "dispatch %S: unknown service %S" d.d_name d.d_service
          | Some (front_seg, _) -> (
            match Hashtbl.find_opt used_services d.d_service with
            | Some other ->
              err "service %S claimed by two dispatchers (%S and %S)"
                d.d_service other d.d_name
            | None -> (
              let shard_segs =
                List.map
                  (fun g ->
                    match Hashtbl.find_opt groups g with
                    | Some s -> Ok (g, s)
                    | None ->
                      err "dispatch %S: unknown shard group %S" d.d_name g)
                  d.d_shards
              in
              match
                List.fold_left
                  (fun acc r ->
                    match (acc, r) with
                    | (Error _ as e), _ -> e
                    | _, (Error _ as e) -> e
                    | Ok acc, Ok x -> Ok (x :: acc))
                  (Ok []) shard_segs
              with
              | Error e -> Error e
              | Ok pairs -> (
                let dup =
                  let seen = Hashtbl.create 4 in
                  List.find_opt
                    (fun (g, _) ->
                      if Hashtbl.mem seen g then true
                      else begin
                        Hashtbl.add seen g ();
                        false
                      end)
                    pairs
                in
                match dup with
                | Some (g, _) -> err "dispatch %S lists shard %S twice" d.d_name g
                | None -> (
                  match pairs with
                  | [] -> assert false
                  | (_, s0) :: _ -> (
                    match List.find_opt (fun (_, s) -> s <> s0) pairs with
                    | Some (g, s) ->
                      err
                        "dispatch %S: shard groups span segments %S and %S \
                         (shard %S) — the fleet needs one back wire"
                        d.d_name s0 s g
                    | None ->
                      if s0 = front_seg then
                        err
                          "dispatch %S: shards share the front segment %S — \
                           the dispatcher needs distinct front and back wires"
                          d.d_name front_seg
                      else if not (is_addr d.d_back) then
                        err "dispatch %S: bad back address %S" d.d_name d.d_back
                      else
                        let* () = claim_addr s0 d.d_back d.d_name in
                        Hashtbl.add used_services d.d_service d.d_name;
                        Hashtbl.add hosts d.d_name `Dispatch;
                        continue ())))))))
  in
  go spec

(* ------------------------------------------------------------------ *)
(* elaboration                                                         *)

type built_host = {
  bh_name : string;
  bh_kind : string;
  bh_where : string; (* segment or link name *)
  bh_host : Host.t;
}

type dispatch_info = {
  di_host : Host.t;
  di_service : Ipaddr.t;
  di_back : Ipaddr.t;
  di_shards : string list;
}

type built_dispatch = {
  bd_info : dispatch_info;
  bd_back_seg : string;
  bd_back_iface : Eth_iface.t;
}

type built = {
  b_segments : (string * Medium.t) list; (* decl order *)
  b_links : (string * Link.t) list;
  b_hosts : built_host list; (* decl order, all kinds *)
  b_groups : (string * string list) list;
  b_dispatches : (string * built_dispatch) list;
  (* LAN membership per segment (hosts + routers), for warm_arp *)
  b_members : (string * Host.t list) list;
}

let build world (spec : spec) : built =
  (match validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Topo.build: " ^ e));
  let segments = ref [] and links = ref [] in
  let hosts = ref [] and groups = ref [] in
  let services = ref [] and dispatches = ref [] in
  let members : (string, Host.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let seg_order = ref [] in
  List.iter
    (function
      | Segment (name, config) ->
        let m = World.make_lan world ?config () in
        segments := (name, m) :: !segments;
        seg_order := name :: !seg_order;
        Hashtbl.add members name (ref [])
      | Link (name, config) ->
        let l =
          Link.create (World.engine world)
            ~rng:(World.fresh_rng world)
            config
        in
        links := (name, l) :: !links
      | Host h ->
        let m = List.assoc h.h_segment !segments in
        let host =
          World.add_host world m ~name:h.h_name ~addr:h.h_addr
            ?profile:h.h_profile ?tcp_config:h.h_tcp ()
        in
        (match h.h_gateway with
        | Some g ->
          Host.set_default_via_lan host ~gateway:(Ipaddr.of_string g)
        | None -> ());
        hosts :=
          { bh_name = h.h_name; bh_kind = "host"; bh_where = h.h_segment;
            bh_host = host }
          :: !hosts;
        let ms = Hashtbl.find members h.h_segment in
        ms := host :: !ms
      | Router r ->
        let m = List.assoc r.r_segment !segments in
        let l = List.assoc r.r_link !links in
        let host =
          World.add_router world m ~lan_addr:r.r_lan_addr ~wan_link:l
            ~wan_addr:r.r_wan_addr ()
        in
        hosts :=
          { bh_name = r.r_name; bh_kind = "router"; bh_where = r.r_segment;
            bh_host = host }
          :: !hosts;
        let ms = Hashtbl.find members r.r_segment in
        ms := host :: !ms
      | Wan_host w ->
        let l = List.assoc w.w_link !links in
        let host =
          World.add_wan_client world ~wan_link:l ~addr:w.w_addr
            ?profile:w.w_profile ?tcp_config:w.w_tcp ()
        in
        hosts :=
          { bh_name = w.w_name; bh_kind = "wan"; bh_where = w.w_link;
            bh_host = host }
          :: !hosts
      | Group (name, ms) -> groups := (name, ms) :: !groups
      | Service s -> services := (s.sv_name, s) :: !services
      | Dispatch d ->
        let s = List.assoc d.d_service !services in
        let front_m = List.assoc s.sv_segment !segments in
        (* validation pinned every shard group to one back segment: read
           it off the first member of the first shard *)
        let back_seg =
          let m0 = List.hd (List.assoc (List.hd d.d_shards) !groups) in
          (List.find (fun bh -> bh.bh_name = m0) !hosts).bh_where
        in
        let back_m = List.assoc back_seg !segments in
        let profile = Option.value d.d_profile ~default:dispatch_profile in
        let host =
          World.add_host world front_m ~name:d.d_name ~addr:s.sv_addr
            ~profile ()
        in
        let back_iface =
          World.attach_extra_lan world host back_m ~addr:d.d_back
        in
        Host.set_forwarding host true;
        hosts :=
          { bh_name = d.d_name; bh_kind = "dispatch";
            bh_where = s.sv_segment; bh_host = host }
          :: !hosts;
        let ms = Hashtbl.find members s.sv_segment in
        ms := host :: !ms;
        dispatches :=
          ( d.d_name,
            {
              bd_info =
                {
                  di_host = host;
                  di_service = Ipaddr.of_string s.sv_addr;
                  di_back = Ipaddr.of_string d.d_back;
                  di_shards = d.d_shards;
                };
              bd_back_seg = back_seg;
              bd_back_iface = back_iface;
            } )
          :: !dispatches)
    spec;
  let b_members =
    List.rev_map
      (fun seg -> (seg, List.rev !(Hashtbl.find members seg)))
      !seg_order
  in
  (* warm every segment's ARP caches over its own stations only: WAN
     hosts are behind the router, and cross-segment bindings would be
     wrong anyway *)
  List.iter (fun (_, hs) -> World.warm_arp hs) b_members;
  (* A dispatcher's *front* interface was warmed with its segment above;
     its back interface is invisible to warm_arp (which only looks at a
     host's first interface), so bind it to the back wire by hand: every
     back-segment station learns the gateway, and the dispatcher learns
     them. *)
  List.iter
    (fun (_, bd) ->
      let back_mac = Nic.mac (Eth_iface.nic bd.bd_back_iface) in
      let back_hosts =
        match List.assoc_opt bd.bd_back_seg b_members with
        | Some hs -> hs
        | None -> []
      in
      List.iter
        (fun h ->
          match (Host.eth h, Host.addr h) with
          | eth, addr ->
            Host.learn_arp h bd.bd_info.di_back back_mac;
            Host.learn_arp bd.bd_info.di_host addr
              (Nic.mac (Eth_iface.nic eth))
          | exception Invalid_argument _ -> ())
        back_hosts)
    !dispatches;
  {
    b_segments = List.rev !segments;
    b_links = List.rev !links;
    b_hosts = List.rev !hosts;
    b_groups = List.rev !groups;
    b_dispatches = List.rev !dispatches;
    b_members;
  }

let host_of b name =
  match List.find_opt (fun bh -> bh.bh_name = name) b.b_hosts with
  | Some bh -> bh.bh_host
  | None -> invalid_arg (Printf.sprintf "Topo.host_of: no host %S" name)

let lookup what l name =
  match List.assoc_opt name l with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Topo.%s_of: no %s %S" what what name)

let segment_of b name = lookup "segment" b.b_segments name
let link_of b name = lookup "link" b.b_links name

let group_of b name =
  let members = lookup "group" b.b_groups name in
  List.map (host_of b) members

let hosts b = List.map (fun bh -> bh.bh_host) b.b_hosts

let dispatch_of b name =
  match List.assoc_opt name b.b_dispatches with
  | Some bd -> bd.bd_info
  | None -> invalid_arg (Printf.sprintf "Topo.dispatch_of: no dispatch %S" name)

let dispatches b = List.map fst b.b_dispatches

let warm_dispatch_arp b name extra =
  match List.assoc_opt name b.b_dispatches with
  | None -> invalid_arg (Printf.sprintf "Topo.warm_dispatch_arp: no dispatch %S" name)
  | Some bd ->
    let back_mac = Nic.mac (Eth_iface.nic bd.bd_back_iface) in
    List.iter
      (fun h ->
        match (Host.eth h, Host.addr h) with
        | eth, addr ->
          Host.learn_arp h bd.bd_info.di_back back_mac;
          Host.learn_arp bd.bd_info.di_host addr (Nic.mac (Eth_iface.nic eth))
        | exception Invalid_argument _ -> ())
      extra

(* ------------------------------------------------------------------ *)
(* concrete syntax                                                     *)

let parse_duration s =
  let num, unit_ =
    let n = String.length s in
    let rec split i =
      if i >= n then (s, "")
      else
        match s.[i] with
        | '0' .. '9' | '.' | '-' -> split (i + 1)
        | _ -> (String.sub s 0 i, String.sub s i (n - i))
    in
    split 0
  in
  match (float_of_string_opt num, unit_) with
  | Some f, ("ms" | "") -> Some (Time.us (int_of_float (f *. 1_000.)))
  | Some f, "us" -> Some (Time.us (int_of_float f))
  | Some f, "s" -> Some (Time.us (int_of_float (f *. 1_000_000.)))
  | _ -> None

let parse (text : string) : (spec, string) result =
  let decls = ref [] in
  let error = ref None in
  let fail lineno fmt =
    Printf.ksprintf
      (fun m ->
        if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno m))
      fmt
  in
  let kv_args lineno what args =
    (* split positional words from k=v options *)
    let pos, opts =
      List.partition (fun a -> not (String.contains a '=')) args
    in
    let opts =
      List.filter_map
        (fun o ->
          match String.index_opt o '=' with
          | Some i ->
            Some
              ( String.sub o 0 i,
                String.sub o (i + 1) (String.length o - i - 1) )
          | None -> None)
        opts
    in
    List.iter
      (fun (k, _) ->
        if not (List.mem k what) then
          fail lineno "unknown option %S (expected one of: %s)" k
            (String.concat ", " what))
      opts;
    (pos, opts)
  in
  let float_opt lineno opts k default =
    match List.assoc_opt k opts with
    | None -> default
    | Some v -> (
      match float_of_string_opt v with
      | Some f -> f
      | None ->
        fail lineno "option %s: bad number %S" k v;
        default)
  in
  let int_opt lineno opts k default =
    match List.assoc_opt k opts with
    | None -> default
    | Some v -> (
      match int_of_string_opt v with
      | Some i -> i
      | None ->
        fail lineno "option %s: bad integer %S" k v;
        default)
  in
  let dur_opt lineno opts k default =
    match List.assoc_opt k opts with
    | None -> default
    | Some v -> (
      match parse_duration v with
      | Some d -> d
      | None ->
        fail lineno "option %s: bad duration %S (use e.g. 15ms, 200us, 1.5s)" k v;
        default)
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | "lan" :: name :: args ->
        let _, opts = kv_args lineno [ "bw"; "loss" ] args in
        let config =
          if opts = [] then None
          else
            Some
              {
                Medium.default_config with
                bandwidth_bps =
                  int_opt lineno opts "bw"
                    Medium.default_config.bandwidth_bps;
                loss_prob =
                  float_opt lineno opts "loss"
                    Medium.default_config.loss_prob;
              }
        in
        decls := Segment (name, config) :: !decls
      | "link" :: name :: args ->
        let _, opts =
          kv_args lineno
            [ "bw"; "delay"; "jitter"; "loss"; "dup"; "reorder"; "queue" ]
            args
        in
        let d = Link.default_config in
        let config =
          {
            Link.bandwidth_bps = int_opt lineno opts "bw" d.bandwidth_bps;
            delay = dur_opt lineno opts "delay" d.delay;
            jitter = dur_opt lineno opts "jitter" d.jitter;
            loss_prob = float_opt lineno opts "loss" d.loss_prob;
            dup_prob = float_opt lineno opts "dup" d.dup_prob;
            reorder_prob = float_opt lineno opts "reorder" d.reorder_prob;
            queue_capacity = int_opt lineno opts "queue" d.queue_capacity;
          }
        in
        decls := Link (name, config) :: !decls
      | "host" :: name :: addr :: seg :: args ->
        let _, opts = kv_args lineno [ "gw" ] args in
        decls :=
          Host
            {
              h_name = name;
              h_addr = addr;
              h_segment = seg;
              h_gateway = List.assoc_opt "gw" opts;
              h_profile = None;
              h_tcp = None;
            }
          :: !decls
      | [ "router"; name; seg; lan_addr; link; wan_addr ] ->
        decls :=
          Router
            {
              r_name = name;
              r_segment = seg;
              r_lan_addr = lan_addr;
              r_link = link;
              r_wan_addr = wan_addr;
            }
          :: !decls
      | [ "wanhost"; name; addr; link ] ->
        decls :=
          Wan_host
            {
              w_name = name;
              w_addr = addr;
              w_link = link;
              w_profile = None;
              w_tcp = None;
            }
          :: !decls
      | "group" :: name :: (_ :: _ as members) ->
        decls := Group (name, members) :: !decls
      | [ "service"; name; addr; seg ] ->
        decls :=
          Service { sv_name = name; sv_segment = seg; sv_addr = addr }
          :: !decls
      | "dispatch" :: name :: rest -> (
        let shards, opts = kv_args lineno [ "service"; "back" ] rest in
        match
          (shards, List.assoc_opt "service" opts, List.assoc_opt "back" opts)
        with
        | [], _, _ ->
          fail lineno "dispatch %S needs at least one shard group" name
        | _, None, _ ->
          fail lineno "dispatch %S: missing service= option" name
        | _, _, None -> fail lineno "dispatch %S: missing back= option" name
        | shards, Some sv, Some back ->
          decls :=
            Dispatch
              {
                d_name = name;
                d_service = sv;
                d_back = back;
                d_shards = shards;
                d_profile = None;
              }
            :: !decls)
      | kw :: _ ->
        fail lineno
          "cannot parse %S (expected: lan, link, host, router, wanhost, \
           group, service, dispatch)"
          kw)
    lines;
  match !error with Some e -> Error e | None -> Ok (List.rev !decls)

(* ------------------------------------------------------------------ *)
(* table                                                               *)

let to_table (b : built) : string =
  let buf = Buffer.create 256 in
  let mac bh =
    match Host.eth bh.bh_host with
    | eth -> Macaddr.to_string (Nic.mac (Eth_iface.nic eth))
    | exception Invalid_argument _ -> "-"
  in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-7s %-15s %-18s %s\n" "HOST" "KIND" "ADDR" "MAC"
       "WHERE");
  List.iter
    (fun bh ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %-7s %-15s %-18s %s\n" bh.bh_name bh.bh_kind
           (Ipaddr.to_string (Host.addr bh.bh_host))
           (mac bh) bh.bh_where))
    b.b_hosts;
  if b.b_groups <> [] then begin
    Buffer.add_char buf '\n';
    List.iter
      (fun (name, members) ->
        Buffer.add_string buf
          (Printf.sprintf "group %-8s %s\n" name (String.concat " > " members)))
      b.b_groups
  end;
  if b.b_dispatches <> [] then begin
    Buffer.add_char buf '\n';
    List.iter
      (fun (name, bd) ->
        Buffer.add_string buf
          (Printf.sprintf "dispatch %-8s service=%s back=%s shards: %s\n" name
             (Ipaddr.to_string bd.bd_info.di_service)
             (Ipaddr.to_string bd.bd_info.di_back)
             (String.concat " " bd.bd_info.di_shards)))
      b.b_dispatches
  end;
  Buffer.contents buf
