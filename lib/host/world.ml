module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Rng = Tcpfo_util.Rng
module Ipaddr = Tcpfo_packet.Ipaddr
module Macaddr = Tcpfo_packet.Macaddr
module Medium = Tcpfo_net.Medium
module Link = Tcpfo_net.Link
module Eth_iface = Tcpfo_ip.Eth_iface
module Obs = Tcpfo_obs.Obs

type t = {
  engine : Engine.t;
  rng : Rng.t;
  obs : Obs.t;
  mutable next_mac : int;
  (* every LAN attachment ever made, for duplicate-address detection:
     (segment, ip, mac, host name) *)
  mutable bindings : (Medium.t * Ipaddr.t * Macaddr.t * string) list;
}

let create ?(seed = 0xC0FFEE) ?engine_backend () =
  let engine = Engine.create ?backend:engine_backend () in
  let obs = Obs.create () in
  (* [lib/sim] cannot see [lib/obs], so the engine's structural counters
     are mirrored into the registry from here.  They are deliberately
     backend-dependent: byte-identity across backends is asserted on
     everything BUT the [engine.*] scope (see DESIGN). *)
  let eobs = Obs.scope obs "engine" in
  let skips = Obs.counter eobs "cancelled_skips" in
  let cascades = Obs.counter eobs "wheel_cascades" in
  Engine.set_stat_hooks engine
    ~cancelled_skip:(fun () -> Tcpfo_obs.Registry.Counter.incr skips)
    ~wheel_cascade:(fun () -> Tcpfo_obs.Registry.Counter.incr cascades);
  { engine; rng = Rng.create ~seed; obs; next_mac = 1; bindings = [] }

(* Two hosts claiming one IP on one segment would fight over ARP — the
   takeover's gratuitous ARP (§5 step 2) is the ONE sanctioned way an
   address moves, so reject the topology outright.  Same for MACs: the
   bridges snoop by address, and a duplicated MAC makes delivery depend
   on attachment order. *)
let record_binding t medium ~addr ~mac ~name =
  List.iter
    (fun (m, a, mc, n) ->
      if m == medium then begin
        if Ipaddr.equal a addr then
          invalid_arg
            (Printf.sprintf
               "World: duplicate IP %s on one segment (hosts %S and %S)"
               (Ipaddr.to_string addr) n name);
        if Macaddr.equal mc mac then
          invalid_arg
            (Printf.sprintf
               "World: duplicate MAC %s on one segment (hosts %S and %S)"
               (Macaddr.to_string mac) n name)
      end)
    t.bindings;
  t.bindings <- (medium, addr, mac, name) :: t.bindings

let engine t = t.engine
let rng t = t.rng
let obs t = t.obs
let metrics t = Obs.metrics t.obs
let fresh_rng t = Rng.split t.rng

let fresh_mac t =
  let m = Macaddr.of_int (0x020000000000 lor t.next_mac) in
  t.next_mac <- t.next_mac + 1;
  m

let make_lan t ?(config = Medium.default_config) () =
  Medium.create t.engine ~rng:(fresh_rng t) ~obs:t.obs config

let add_host t medium ~name ~addr ?profile ?tcp_config () =
  let h =
    Host.create t.engine ~name ~rng:(fresh_rng t) ?profile ?tcp_config
      ~obs:t.obs ()
  in
  let ip = Ipaddr.of_string addr in
  let mac = fresh_mac t in
  record_binding t medium ~addr:ip ~mac ~name;
  let _ : Eth_iface.t = Host.attach_lan h medium ~addr:ip ~mac () in
  h

(* A second (or further) LAN leg for an already-created host — the
   two-homed dispatcher tier attaches its back-side interface through
   here so the MAC draw and the duplicate-binding check stay centralized
   and in declaration order. *)
let attach_extra_lan t host medium ~addr =
  let ip = Ipaddr.of_string addr in
  let mac = fresh_mac t in
  record_binding t medium ~addr:ip ~mac ~name:(Host.name host);
  Host.attach_lan host medium ~addr:ip ~mac ()

let router_profile =
  { Host.tx_cost = Time.us 5; rx_cost = Time.us 10; jitter_frac = 0.0;
    hiccup_prob = 0.0 }

let add_router t medium ~lan_addr ~wan_link ~wan_addr () =
  let h =
    Host.create t.engine ~name:"router" ~rng:(fresh_rng t)
      ~profile:router_profile ~obs:t.obs ()
  in
  let ip = Ipaddr.of_string lan_addr in
  let mac = fresh_mac t in
  record_binding t medium ~addr:ip ~mac ~name:"router";
  let _ : Eth_iface.t = Host.attach_lan h medium ~addr:ip ~mac () in
  Host.attach_ptp h (Link.endpoint_b wan_link) ~addr:(Ipaddr.of_string wan_addr);
  Host.set_forwarding h true;
  h

let add_wan_client t ~wan_link ~addr ?profile ?tcp_config () =
  let h =
    Host.create t.engine ~name:"wan-client" ~rng:(fresh_rng t) ?profile
      ?tcp_config ~obs:t.obs ()
  in
  Host.attach_ptp h (Link.endpoint_a wan_link) ~addr:(Ipaddr.of_string addr);
  Host.set_default_via_ptp h;
  h

let warm_arp hosts =
  (* dead hosts neither learn nor teach: a killed host still claims its
     address (after a primary death, the SERVICE address), and warming
     its stale binding into the others would override the takeover's
     gratuitous ARP and re-poison the service address *)
  let hosts = List.filter Host.alive hosts in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Host.name a <> Host.name b then
            match
              ( (try Some (Host.eth b) with Invalid_argument _ -> None),
                (try Some (Host.addr b) with Invalid_argument _ -> None) )
            with
            | Some eth_b, Some addr_b ->
              Host.learn_arp a addr_b
                (Tcpfo_net.Nic.mac (Eth_iface.nic eth_b))
            | _ -> ())
        hosts)
    hosts

let run t ~for_ = Engine.run_for t.engine for_
let run_until_idle t = Engine.run t.engine
let now t = Engine.now t.engine
