(** A simulated host: NIC(s) + ARP + IP + TCP, with crash-fault injection.

    [kill] models a fail-stop crash (the paper's fault model): the NIC
    detaches from the wire and every pending timer of the host becomes
    inert, as if power were cut.  Nothing is flushed and no FIN or RST is
    emitted — surviving nodes only notice through missing heartbeats and
    missing acknowledgments. *)

type profile = {
  tx_cost : Tcpfo_sim.Time.t;  (** per-datagram transmit-path CPU cost *)
  rx_cost : Tcpfo_sim.Time.t;  (** per-datagram receive-path CPU cost *)
  jitter_frac : float;
      (** uniform per-packet extra cost in [0, frac·base) — OS noise *)
  hiccup_prob : float;
      (** probability of a rare ~3× scheduling hiccup per packet *)
}

val default_profile : profile
(** Calibrated so that a standard-TCP connection setup on an otherwise
    idle 100 Mb/s LAN lands near the paper's ~294 µs median (§9). *)

type t

val create :
  Tcpfo_sim.Engine.t ->
  name:string ->
  rng:Tcpfo_util.Rng.t ->
  ?profile:profile ->
  ?tcp_config:Tcpfo_tcp.Tcp_config.t ->
  ?obs:Tcpfo_obs.Obs.t ->
  unit ->
  t
(** [obs] is normally the world's root handle; the host narrows it to
    [host.<name>] and threads it through its NIC, ARP cache, IP layer and
    TCP stack, so a fully-wired host reports e.g.
    [host.server.tcp.retransmits] and [host.server.nic.rx] without
    further plumbing. *)

val attach_lan :
  t ->
  Tcpfo_net.Medium.t ->
  addr:Tcpfo_packet.Ipaddr.t ->
  ?prefix:int ->
  mac:Tcpfo_packet.Macaddr.t ->
  unit ->
  Tcpfo_ip.Eth_iface.t

val attach_ptp :
  t ->
  Tcpfo_net.Link.endpoint ->
  addr:Tcpfo_packet.Ipaddr.t ->
  unit
(** Point-to-point attachment (the WAN side of a router, or a remote
    client).  Adds a connected host route for the peer; use
    {!set_default_via_ptp} to route everything through it. *)

val set_default_via_ptp : t -> unit
(** Default route through the (single) point-to-point interface. *)

val set_default_via_lan : t -> gateway:Tcpfo_packet.Ipaddr.t -> unit

val set_forwarding : t -> bool -> unit

val name : t -> string
val engine : t -> Tcpfo_sim.Engine.t
val clock : t -> Tcpfo_sim.Clock.t
val rng : t -> Tcpfo_util.Rng.t

val obs : t -> Tcpfo_obs.Obs.t
(** The host's [host.<name>] scope.  In-host components (bridges,
    heartbeat) derive their scopes from it; use [Obs.root] for
    world-absolute names. *)

val ip : t -> Tcpfo_ip.Ip_layer.t
val cpu : t -> Tcpfo_sim.Cpu.t
val tcp : t -> Tcpfo_tcp.Stack.t
val eth : t -> Tcpfo_ip.Eth_iface.t
(** The (first) Ethernet interface.  Raises if none is attached. *)

val addr : t -> Tcpfo_packet.Ipaddr.t
(** Primary address of the first interface attached. *)

val alive : t -> bool

val kill : t -> unit
(** Fail-stop crash. *)

val pause : t -> unit
(** Freeze the host without detaching it (SIGSTOP / VM-pause semantics):
    timers that come due and packets that arrive while paused are queued
    instead of processed — the NIC still sees the wire, so nothing is
    physically lost, but the host emits nothing and reacts to nothing.
    Unlike {!kill} this is reversible; surviving peers cannot tell the
    two apart until the host comes back. *)

val resume : t -> unit
(** Thaw a paused host.  All work deferred during the freeze runs
    immediately, in its original firing order, at the resume instant —
    exactly what an OS does with expired timers after SIGCONT.  No-op if
    not paused. *)

val paused : t -> bool

val set_partitioned : t -> bool -> unit
(** Cut (or restore) the host's network without it noticing: every
    attached interface silently discards inbound and outbound traffic
    while partitioned, but timers keep running — the mirror image of
    {!pause}, and likewise reversible. *)

val learn_arp :
  t -> Tcpfo_packet.Ipaddr.t -> Tcpfo_packet.Macaddr.t -> unit
(** Pre-warm the ARP cache (the paper pre-warms all caches before
    measuring, §9). *)
