(** Topology as data.

    Every experiment in the repo used to hand-wire its world: make a
    LAN, add hosts one by one, remember to warm ARP, keep the replica
    order in your head.  [Topo] replaces that with a declarative
    description — segments, hosts, links, routers and replica groups as
    plain data — and one elaborator, {!build}, that turns a validated
    {!spec} into live {!World} objects.

    Declarations are an ordered list and are elaborated strictly in
    declaration order.  This is a determinism contract, not a
    convenience: every segment, link and host construction draws from
    the world's root RNG (and the MAC allocator), so a spec whose
    declarations mirror a hand-wired setup produces a byte-identical
    world — same MACs, same per-host RNG streams, same metrics.

    A tiny line-oriented concrete syntax ({!parse}) backs the CLI
    [topo] subcommand, so topologies can live in files:

    {v
    # three-replica pool behind a WAN
    lan net
    link wan bw=2000000 delay=15ms loss=0.002
    router gw net 10.0.0.254 wan 192.168.0.1
    wanhost client 192.168.0.2 wan
    host primary 10.0.0.1 net gw=10.0.0.254
    host secondary 10.0.0.2 net gw=10.0.0.254
    host standby 10.0.0.4 net gw=10.0.0.254
    group pool primary secondary standby
    v} *)

(** {1 Spec} *)

type host = {
  h_name : string;
  h_addr : string;  (** dotted quad *)
  h_segment : string;  (** name of a [Segment] declared earlier *)
  h_gateway : string option;  (** default route via this LAN gateway *)
  h_profile : Host.profile option;
  h_tcp : Tcpfo_tcp.Tcp_config.t option;
}

type router = {
  r_name : string;
  r_segment : string;
  r_lan_addr : string;
  r_link : string;  (** the router takes the link's B side *)
  r_wan_addr : string;
}

type wan_host = {
  w_name : string;
  w_addr : string;
  w_link : string;  (** the WAN host takes the link's A side *)
  w_profile : Host.profile option;
  w_tcp : Tcpfo_tcp.Tcp_config.t option;
}

type service = {
  sv_name : string;
  sv_segment : string;  (** the client-facing (front) segment *)
  sv_addr : string;  (** the fleet's client-visible address *)
}

type dispatch = {
  d_name : string;
  d_service : string;  (** a [Service] declared earlier *)
  d_back : string;  (** dispatcher's own address on the back segment *)
  d_shards : string list;  (** [Group]s declared earlier, one back segment *)
  d_profile : Host.profile option;  (** default {!dispatch_profile} *)
}

type decl =
  | Segment of string * Tcpfo_net.Medium.config option
  | Link of string * Tcpfo_net.Link.config
  | Host of host
  | Router of router
  | Wan_host of wan_host
  | Group of string * string list
      (** replica pool in promotion order: active primary first, active
          secondary second, cold standbys after *)
  | Service of service
      (** a sharded service address: the name clients know the fleet by *)
  | Dispatch of dispatch
      (** a two-homed dispatcher host fronting a fleet of shard pools:
          front interface owns the service address, back interface sits
          on the shards' segment with IP forwarding on *)

type spec = decl list

(** {2 Constructors} — for terse programmatic specs *)

val segment : ?config:Tcpfo_net.Medium.config -> string -> decl
val link : ?config:Tcpfo_net.Link.config -> string -> decl

val host :
  ?gateway:string ->
  ?profile:Host.profile ->
  ?tcp_config:Tcpfo_tcp.Tcp_config.t ->
  addr:string ->
  seg:string ->
  string ->
  decl

val router :
  seg:string -> lan_addr:string -> link:string -> wan_addr:string ->
  string -> decl

val wan_host :
  ?profile:Host.profile ->
  ?tcp_config:Tcpfo_tcp.Tcp_config.t ->
  addr:string ->
  link:string ->
  string ->
  decl

val group : members:string list -> string -> decl
val service : seg:string -> addr:string -> string -> decl

val dispatch :
  ?profile:Host.profile ->
  service:string ->
  back:string ->
  shards:string list ->
  string ->
  decl

val dispatch_profile : Host.profile
(** Default profile for dispatcher hosts: switch-class per-packet costs
    (4/6 µs, no jitter) — the dispatcher forwards every fleet packet
    twice, so it must be much cheaper per packet than an end host. *)

(** {1 Validation} *)

val validate : spec -> (unit, string) result
(** Structural checks, before anything is built:
    - duplicate declaration names (hosts, routers and WAN hosts share
      one namespace; segments, links and groups each have their own);
    - references to undeclared (or later-declared) segments and links;
    - duplicate IP addresses on one segment, and duplicate WAN-side
      addresses on one link;
    - dangling link endpoints: each link must be claimed by exactly one
      router (B side) and exactly one WAN host (A side);
    - groups with fewer than two members, unknown members, non-LAN
      members, or members spread across different segments (the §3.1
      snooping model needs the whole pool on one wire);
    - services with unknown segments, and dispatchers with an unknown or
      already-claimed service, unknown/duplicate shard groups, shards
      spread over several back segments, or shards sharing the front
      segment (the dispatcher needs two distinct wires);
    - malformed addresses and gateways.

    Every error message names the offending declaration. *)

(** {1 Elaboration} *)

type built

val build : World.t -> spec -> built
(** Validate, then elaborate in declaration order, drawing world RNG and
    MAC state exactly as the equivalent hand-wired calls would.  After
    all declarations, every segment's ARP caches are warmed
    ({!World.warm_arp} — dead hosts skipped) over its LAN hosts and
    routers.  Raises [Invalid_argument] with {!validate}'s message on an
    invalid spec. *)

val host_of : built -> string -> Host.t
(** Any named host — LAN host, router or WAN host.  This and the other
    accessors raise [Invalid_argument] on an unknown name. *)

val segment_of : built -> string -> Tcpfo_net.Medium.t
val link_of : built -> string -> Tcpfo_net.Link.t

val group_of : built -> string -> Host.t list
(** Members of a replica group, in promotion order — feed it straight to
    [Replicated.create_pool ~replicas]. *)

val hosts : built -> Host.t list
(** Every host in declaration order (LAN hosts, routers, WAN hosts,
    dispatchers). *)

type dispatch_info = {
  di_host : Host.t;
  di_service : Tcpfo_packet.Ipaddr.t;  (** front, client-visible *)
  di_back : Tcpfo_packet.Ipaddr.t;  (** back, the shards' gateway *)
  di_shards : string list;  (** shard group names, registration order *)
}

val dispatch_of : built -> string -> dispatch_info
(** The elaborated dispatcher: a two-homed host with forwarding enabled,
    both interfaces ARP-warmed.  Feed it to [Dispatch.of_topo]. *)

val dispatches : built -> string list
(** Declared dispatcher names, declaration order. *)

val warm_dispatch_arp : built -> string -> Host.t list -> unit
(** Bind late-added back-segment hosts (e.g. repaired replicas) to the
    named dispatcher: each learns the dispatcher's back address/MAC and
    the dispatcher learns theirs.  Dead hosts are skipped. *)

(** {1 Concrete syntax} *)

val parse : string -> (spec, string) result
(** Parse the line-oriented syntax.  One declaration per line; [#] starts
    a comment; blank lines are skipped.

    {v
    lan NAME [bw=BPS] [loss=P]
    link NAME [bw=BPS] [delay=DUR] [jitter=DUR] [loss=P] [dup=P]
              [reorder=P] [queue=N]
    host NAME ADDR SEGMENT [gw=ADDR]
    router NAME SEGMENT LAN_ADDR LINK WAN_ADDR
    wanhost NAME ADDR LINK
    group NAME MEMBER MEMBER [MEMBER...]
    service NAME ADDR SEGMENT
    dispatch NAME SHARD [SHARD...] service=NAME back=ADDR
    v}

    Durations accept [ms]/[us]/[s] suffixes (e.g. [delay=15ms]).  The
    result is unvalidated — run {!validate} (or {!build}) next. *)

val to_table : built -> string
(** Human-readable table of the elaborated topology: one row per host
    (name, kind, address, MAC, segment/link), then the declared groups
    and dispatchers. *)
