(** Canned topologies for experiments and tests.

    Two shapes cover everything in the paper's evaluation:

    - {!make_lan}: one shared 100 Mb/s Ethernet segment carrying the
      client, the primary, the secondary, and (for baselines) an
      unreplicated server — the §9 LAN testbed;
    - {!add_wan_client}: a client behind a router and a bandwidth/latency/
      loss-limited point-to-point link — the §9 FTP-over-WAN testbed. *)

type t

val create : ?seed:int -> ?engine_backend:Tcpfo_sim.Engine.backend -> unit -> t
(** [engine_backend] selects the event-queue implementation (default
    [Heap]).  Simulation results are byte-identical across backends; the
    engine's structural counters ([engine.cancelled_skips],
    [engine.wheel_cascades]) are mirrored into the registry and are the
    only backend-dependent metrics. *)

val engine : t -> Tcpfo_sim.Engine.t
val rng : t -> Tcpfo_util.Rng.t
(** The root RNG; split it for workloads. *)

val obs : t -> Tcpfo_obs.Obs.t
(** Root observability handle shared by everything the world builds:
    hosts scope themselves under [host.<name>], the LAN medium under
    [medium].  Subscribe to [Tcpfo_obs.Event.Bus] via [Obs.bus] to watch
    structured trace events. *)

val metrics : t -> Tcpfo_obs.Registry.t
(** Shortcut for [Obs.metrics (obs t)] — the registry to snapshot or
    query at the end of a run. *)

val fresh_rng : t -> Tcpfo_util.Rng.t

val make_lan : t -> ?config:Tcpfo_net.Medium.config -> unit -> Tcpfo_net.Medium.t

val add_host :
  t ->
  Tcpfo_net.Medium.t ->
  name:string ->
  addr:string ->
  ?profile:Host.profile ->
  ?tcp_config:Tcpfo_tcp.Tcp_config.t ->
  unit ->
  Host.t
(** LAN host with an auto-assigned MAC and a /24 on the given address.
    Raises [Invalid_argument] if the address (or MAC) is already claimed
    on the same segment: the takeover's gratuitous ARP is the one
    sanctioned way an address moves between hosts, so a statically
    duplicated binding is always a topology bug. *)

val attach_extra_lan :
  t ->
  Host.t ->
  Tcpfo_net.Medium.t ->
  addr:string ->
  Tcpfo_ip.Eth_iface.t
(** Attach a further LAN interface (auto-assigned MAC, /24) to an
    existing host — e.g. the back leg of a two-homed dispatcher.  Same
    duplicate-binding rejection as {!add_host}; the host's first
    interface (and with it {!Host.addr}) is unchanged. *)

val add_router :
  t ->
  Tcpfo_net.Medium.t ->
  lan_addr:string ->
  wan_link:Tcpfo_net.Link.t ->
  wan_addr:string ->
  unit ->
  Host.t
(** Forwarding host with a LAN leg and the B side of [wan_link]. *)

val add_wan_client :
  t ->
  wan_link:Tcpfo_net.Link.t ->
  addr:string ->
  ?profile:Host.profile ->
  ?tcp_config:Tcpfo_tcp.Tcp_config.t ->
  unit ->
  Host.t
(** Client on the A side of [wan_link] with a default route through it. *)

val warm_arp : Host.t list -> unit
(** Insert every host's (address, MAC) binding into every other host's ARP
    cache, as the paper does before timing anything (§9).  Dead hosts are
    skipped on both sides, so warming after a failure can never re-poison
    a taken-over service address with the corpse's binding. *)

val run : t -> for_:Tcpfo_sim.Time.t -> unit
val run_until_idle : t -> unit
val now : t -> Tcpfo_sim.Time.t
