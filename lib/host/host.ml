module Engine = Tcpfo_sim.Engine
module Clock = Tcpfo_sim.Clock
module Time = Tcpfo_sim.Time
module Rng = Tcpfo_util.Rng
module Ipaddr = Tcpfo_packet.Ipaddr
module Macaddr = Tcpfo_packet.Macaddr
module Medium = Tcpfo_net.Medium
module Link = Tcpfo_net.Link
module Nic = Tcpfo_net.Nic
module Eth_iface = Tcpfo_ip.Eth_iface
module Ip_layer = Tcpfo_ip.Ip_layer
module Stack = Tcpfo_tcp.Stack
module Tcp_config = Tcpfo_tcp.Tcp_config
module Obs = Tcpfo_obs.Obs

type profile = {
  tx_cost : Time.t;
  rx_cost : Time.t;
  jitter_frac : float; (* uniform extra cost, as a fraction of the base *)
  hiccup_prob : float; (* rare scheduler hiccup adding ~3x the base cost *)
}

let default_profile =
  { tx_cost = Time.us 30; rx_cost = Time.us 45; jitter_frac = 0.0;
    hiccup_prob = 0.0 }

type iface_entry =
  | Lan of Eth_iface.t * Ip_layer.iface
  | Ptp of Link.endpoint * Ipaddr.t * Ip_layer.iface

type t = {
  engine : Engine.t;
  name : string;
  rng : Rng.t;
  clock : Clock.t;
  obs : Obs.t; (* scoped [host.<name>] *)
  ip : Ip_layer.t;
  tcp : Stack.t;
  mutable ifaces : iface_entry list;
  mutable alive : bool;
  mutable paused : bool;
  (* timers and packet deliveries that came due while paused, in firing
     order; each carries its logical cancellation ref *)
  deferred : (Engine.event_id * (unit -> unit)) Queue.t;
}

let create engine ~name ~rng ?(profile = default_profile)
    ?(tcp_config = Tcp_config.default) ?obs () =
  let obs =
    Obs.scope
      (Obs.scope (match obs with Some o -> o | None -> Obs.silent ()) "host")
      name
  in
  let rec t =
    lazy
      ((* Pause-aware variant of [Clock.guarded]: when the event comes due
          on a paused host its body is parked on [deferred] instead of
          running, keyed by the event's own id so a cancel that arrives
          while the body is parked still takes effect (the engine keeps
          cancelled-after-fire observable for exactly this purpose). *)
       let clock =
         let schedule delay fn =
           let id_cell = ref None in
           let id =
             Engine.schedule engine ~delay (fun () ->
                 let host = Lazy.force t in
                 if host.alive then
                   if host.paused then
                     Queue.push (Option.get !id_cell, fn) host.deferred
                   else fn ())
           in
           id_cell := Some id;
           id
         in
         { Clock.now = (fun () -> Engine.now engine);
           schedule;
           cancel = (fun id -> Engine.cancel engine id) }
       in
       let jitter =
         if profile.jitter_frac > 0.0 || profile.hiccup_prob > 0.0 then begin
           let base = (profile.tx_cost + profile.rx_cost) / 2 in
           Some
             (fun () ->
               let extra =
                 if profile.jitter_frac > 0.0 then
                   Rng.int rng
                     (max 1
                        (int_of_float
                           (float_of_int base *. profile.jitter_frac)))
                 else 0
               in
               if
                 profile.hiccup_prob > 0.0 && Rng.bool rng profile.hiccup_prob
               then extra + (3 * base)
               else extra)
         end
         else None
       in
       let ip =
         Ip_layer.create clock ~name ~tx_cost:profile.tx_cost
           ~rx_cost:profile.rx_cost ?jitter ~obs ()
       in
       let tcp = Stack.create clock ~ip ~config:tcp_config ~rng in
       { engine; name; rng; clock; obs; ip; tcp; ifaces = []; alive = true;
         paused = false; deferred = Queue.create () })
  in
  Lazy.force t

let name t = t.name
let engine t = t.engine
let clock t = t.clock
let rng t = t.rng
let obs t = t.obs
let ip t = t.ip
let cpu t = Ip_layer.cpu t.ip
let tcp t = t.tcp
let alive t = t.alive

let attach_lan t medium ~addr ?(prefix = 24) ~mac () =
  let nic = Nic.create t.engine ~mac ~obs:t.obs medium in
  let eth =
    Eth_iface.create t.clock ~obs:t.obs ~host:t.name ~nic ~addr ~prefix ()
  in
  let iface = Ip_layer.add_eth_iface t.ip eth in
  t.ifaces <- t.ifaces @ [ Lan (eth, iface) ];
  eth

let attach_ptp t ep ~addr =
  let iface = Ip_layer.add_ptp_iface t.ip ep ~addr in
  (* connected route for the link subnet, so replies reach the peer *)
  Ip_layer.add_route t.ip ~net:addr ~prefix:24 iface;
  t.ifaces <- t.ifaces @ [ Ptp (ep, addr, iface) ]

let first_ptp t =
  List.find_map
    (function Ptp (ep, _, iface) -> Some (ep, iface) | Lan _ -> None)
    t.ifaces

let set_default_via_ptp t =
  match first_ptp t with
  | Some (_, iface) ->
    Ip_layer.add_route t.ip ~net:Ipaddr.any ~prefix:0 iface
  | None -> invalid_arg "Host.set_default_via_ptp: no ptp interface"

let eth t =
  match
    List.find_map
      (function Lan (e, _) -> Some e | Ptp _ -> None)
      t.ifaces
  with
  | Some e -> e
  | None -> invalid_arg (t.name ^ ": no ethernet interface")

let lan_iface t =
  match
    List.find_map
      (function Lan (_, i) -> Some i | Ptp _ -> None)
      t.ifaces
  with
  | Some i -> i
  | None -> invalid_arg (t.name ^ ": no ethernet interface")

let set_default_via_lan t ~gateway =
  Ip_layer.set_default_route t.ip ~gateway (lan_iface t)

let set_forwarding t v = Ip_layer.set_forwarding t.ip v

let addr t =
  match t.ifaces with
  | Lan (e, _) :: _ -> Eth_iface.primary_address e
  | Ptp (_, a, _) :: _ -> a
  | [] -> invalid_arg (t.name ^ ": no interface")

let kill t =
  if t.alive then begin
    t.alive <- false;
    Queue.clear t.deferred;
    List.iter
      (function
        | Lan (e, _) -> Eth_iface.shutdown e
        | Ptp (ep, _, _) -> Link.set_receiver ep (fun _ -> ()))
      t.ifaces
  end

let paused t = t.paused
let pause t = if t.alive then t.paused <- true

let resume t =
  if t.alive && t.paused then begin
    t.paused <- false;
    (* Everything that came due during the freeze fires now, in original
       order, all at the resume instant — SIGCONT semantics.  A handler
       may re-pause (or kill) the host, in which case the rest stays
       deferred (resp. is discarded). *)
    let continue = ref true in
    while !continue && not (Queue.is_empty t.deferred) do
      let id, fn = Queue.pop t.deferred in
      if not (Engine.is_cancelled id) then fn ();
      if t.paused || not t.alive then continue := false
    done
  end

let set_partitioned t v =
  List.iter
    (function
      | Lan (e, _) -> Nic.set_partitioned (Eth_iface.nic e) v
      | Ptp (ep, _, _) -> Link.set_blocked ep v)
    t.ifaces

let learn_arp t peer_ip peer_mac =
  List.iter
    (function
      | Lan (e, _) -> Tcpfo_ip.Arp_cache.learn (Eth_iface.arp_cache e) peer_ip peer_mac
      | Ptp _ -> ())
    t.ifaces
